"""Wire codec layer: negotiation, binary framing, legacy byte-identity."""

import json
import socket
import struct
import time

import numpy as np
import pytest

from repro.api import (
    Classifier,
    ReproConfig,
    ScoringClient,
    ScoringDaemon,
)
from repro.api.protocol import (
    ERROR_BAD_REQUEST,
    ERROR_INVALID_FRAME,
    ERROR_TOO_LARGE,
    MAX_REQUEST_BYTES,
    encode_frame,
    ok_frame,
)
from repro.api.wire import (
    BINARY_CODEC,
    BINARY_V2_CODEC,
    CODEC_BINARY,
    CODEC_BINARY_V2,
    CODEC_JSON,
    DEFAULT_CODECS,
    FRAME_BATCH,
    FRAME_JSON,
    FRAME_PREDICT,
    FRAME_PREDICT_STREAM,
    FRAME_PREDICTIONS_STREAM,
    HEADER,
    JSON_CODEC,
    NO_ID,
    PredictStream,
    WireSession,
    get_codec,
    merge_codec_stats,
    prediction_frame,
)
from repro.errors import ScoringError


@pytest.fixture()
def trained(tiny_dataset) -> Classifier:
    return Classifier(ReproConfig(profile="unit")).train(tiny_dataset)


@pytest.fixture()
def unix_path(tmp_path) -> str:
    return str(tmp_path / "repro.sock")


def _f32(rows) -> np.ndarray:
    """Round rows to the f32 grid the binary codec transports, so JSON
    and binary clients score bit-identical inputs."""
    return np.asarray(rows, dtype=np.float32).astype(np.float64)


def _connect(path: str) -> socket.socket:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(10.0)
    sock.connect(path)
    return sock


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise AssertionError(f"EOF after {len(buf)}/{n} bytes")
        buf += chunk
    return buf


def _recv_binary_frame(sock: socket.socket) -> bytes:
    head = _recv_exact(sock, HEADER.size)
    length, = struct.unpack_from("<I", head)
    return head[4:] + _recv_exact(sock, length)


def _recv_line(sock: socket.socket) -> bytes:
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = sock.recv(65536)
        if not chunk:
            break
        buf += chunk
    return buf


# -- WireSession unit tests ------------------------------------------------


class TestWireSession:
    def test_json_frames_across_chunk_boundaries(self):
        wire = WireSession()
        line = b'{"cmd": "info"}\n'
        wire.push(line[:7])
        assert wire.next_frame() is None
        wire.push(line[7:] + b'{"cmd": "stats"}\n')
        assert wire.next_frame() == b'{"cmd": "info"}'
        assert wire.next_frame() == b'{"cmd": "stats"}'
        assert wire.next_frame() is None
        assert wire.bytes_in == {CODEC_JSON: len(line) + 17}

    def test_newline_less_flood_is_fatal(self):
        wire = WireSession(max_bytes=64)
        wire.push(b"x" * 65)
        assert wire.next_frame() is None
        assert wire.fatal
        farewell = wire.take_pending_error()
        assert b'"too_large"' in farewell
        assert wire.take_pending_error() is None

    def test_binary_oversized_declared_length_is_fatal(self):
        wire = WireSession(max_bytes=64)
        wire.codec = BINARY_CODEC
        wire.push(HEADER.pack(65, FRAME_PREDICT))
        assert wire.next_frame() is None
        assert wire.fatal
        frame = json.loads(bytes(
            memoryview(wire.take_pending_error())[HEADER.size:]))
        assert frame["code"] == ERROR_TOO_LARGE

    def test_negotiate_switches_after_answering_in_old_codec(self):
        wire = WireSession()
        raw = wire.negotiate({"cmd": "hello", "id": 1,
                              "codecs": [CODEC_BINARY]})
        # the hello answer itself is a JSON line...
        assert json.loads(raw) == {"ok": True, "id": 1,
                                   "codec": CODEC_BINARY}
        # ...and every frame after it speaks binary
        assert wire.codec is BINARY_CODEC

    def test_negotiate_unknown_codecs_fall_back_to_json(self):
        wire = WireSession()
        raw = wire.negotiate({"cmd": "hello", "id": 2,
                              "codecs": ["zstd-9000", 42]})
        assert json.loads(raw)["codec"] == CODEC_JSON
        assert wire.codec is JSON_CODEC

    def test_negotiate_respects_server_offered_set(self):
        wire = WireSession(offered=(CODEC_JSON,))
        raw = wire.negotiate({"cmd": "hello", "codecs": [CODEC_BINARY]})
        assert json.loads(raw)["codec"] == CODEC_JSON
        assert wire.codec is JSON_CODEC

    def test_non_hello_is_not_negotiation(self):
        wire = WireSession()
        assert wire.negotiate({"cmd": "info"}) is None
        assert wire.negotiate("hello") is None

    def test_codec_switch_applies_mid_buffer(self):
        """Hello + a binary frame pipelined into one chunk: the frame
        after the switch must parse under the *new* codec."""
        wire = WireSession()
        predict = get_codec(CODEC_BINARY).encode_request(
            {"id": 7, "features": [1.0, 2.0]})
        wire.push(b'{"cmd": "hello", "codecs": ["binary-v1"]}\n' + predict)
        raw = wire.next_frame()
        assert wire.negotiate(json.loads(raw)) is not None
        frame = wire.next_frame()
        request, error = wire.decode(frame)
        assert error is None
        assert request["id"] == 7
        assert request["features"] == [1.0, 2.0]

    def test_merge_codec_stats_sums_sections(self):
        merged = merge_codec_stats([
            {"offered": ["binary-v1", "json"],
             "connections": {"json": 2}, "requests": {"json": 10},
             "bytes_in": {"json": 100}, "bytes_out": {"json": 200}},
            {"offered": ["json"],
             "connections": {"json": 1, "binary-v1": 3},
             "requests": {"binary-v1": 7},
             "bytes_in": {"binary-v1": 50}, "bytes_out": {}},
            None,
        ])
        assert merged["connections"] == {"json": 3, "binary-v1": 3}
        assert merged["requests"] == {"json": 10, "binary-v1": 7}
        assert set(merged["offered"]) == {"binary-v1", "json"}


class TestBinaryCodecRoundTrip:
    def test_predict_request_roundtrip(self):
        codec = get_codec(CODEC_BINARY)
        raw = codec.encode_request({"id": 3, "features": [0.5, 1.25]})
        request, error = codec.decode_request(raw[4:])
        assert error is None
        assert request == {"features": [0.5, 1.25], "id": 3}

    def test_batch_request_roundtrip_keeps_matrix(self):
        codec = get_codec(CODEC_BINARY)
        rows = _f32(np.arange(12, dtype=float).reshape(4, 3))
        raw = codec.encode_request({"id": 9, "rows": rows})
        request, error = codec.decode_request(raw[4:])
        assert error is None
        assert isinstance(request["rows"], np.ndarray)
        np.testing.assert_array_equal(request["rows"], rows)

    def test_no_id_sentinel(self):
        codec = get_codec(CODEC_BINARY)
        raw = codec.encode_request({"features": [1.0]})
        request, _ = codec.decode_request(raw[4:])
        assert "id" not in request
        response = codec.encode_prediction(None, 4)
        assert codec.decode_response(response[4:]) == {"ok": True,
                                                       "prediction": 4}

    def test_cold_verbs_travel_as_embedded_json(self):
        codec = get_codec(CODEC_BINARY)
        raw = codec.encode_request({"cmd": "info", "id": 1})
        assert raw[4] == FRAME_JSON
        request, error = codec.decode_request(raw[4:])
        assert error is None and request["cmd"] == "info"

    def test_predictions_response_roundtrip(self):
        codec = get_codec(CODEC_BINARY)
        frame = {"ok": True, "id": 5, "predictions": [1, 8, 2]}
        raw = codec.encode_response(frame)
        assert codec.decode_response(raw[4:]) == frame

    def test_size_mismatch_draws_invalid_frame(self):
        codec = get_codec(CODEC_BINARY)
        body = struct.pack("<qI", 1, 10) + b"\0" * 8  # declares 10 floats
        _, error = codec.decode_request(bytes([FRAME_PREDICT]) + body)
        assert error["code"] == ERROR_INVALID_FRAME

    def test_unknown_frame_type_draws_invalid_frame(self):
        codec = get_codec(CODEC_BINARY)
        _, error = codec.decode_request(b"\x7fgarbage")
        assert error["code"] == ERROR_INVALID_FRAME
        with pytest.raises(ValueError):
            codec.decode_response(b"\x7fgarbage")


# -- legacy byte-identity over real daemons --------------------------------


class TestLegacyByteIdentity:
    """Clients that never send hello must receive the exact PR 5 bytes."""

    def _assert_legacy_bytes(self, trained, unix_path, X):
        expected_single = prediction_frame(
            7, int(trained.predict(X[0]))).encode("utf-8")
        expected_batch = encode_frame(ok_frame(
            {"predictions": [int(p) for p in trained.predict_batch(X)]},
            8)).encode("utf-8")
        sock = _connect(unix_path)
        with sock:
            sock.sendall(json.dumps(
                {"id": 7, "features": list(X[0])}).encode() + b"\n")
            assert _recv_line(sock) == expected_single
            sock.sendall(json.dumps(
                {"id": 8, "rows": X.tolist()}).encode() + b"\n")
            assert _recv_line(sock) == expected_batch

    def test_threaded_server_no_hello(self, trained, tiny_dataset,
                                      unix_path):
        X = tiny_dataset.matrix(trained.feature_names_)
        with ScoringDaemon(trained, socket_path=unix_path, workers=2):
            self._assert_legacy_bytes(trained, unix_path, X)

    def test_eventloop_server_no_hello(self, trained, tiny_dataset,
                                       unix_path):
        from repro.api.fleet import ModelFleet, ModelPool

        X = tiny_dataset.matrix(trained.feature_names_)
        fleet = ModelFleet(ModelPool(), default=trained)
        with ScoringDaemon(fleet=fleet, socket_path=unix_path, workers=2):
            self._assert_legacy_bytes(trained, unix_path, X)

    def test_stdio_engine_answers_hello_with_json(self, trained):
        from repro.api.transport import RequestEngine

        engine = RequestEngine(trained)
        frame = engine.handle({"cmd": "hello", "id": 1,
                               "codecs": [CODEC_BINARY]})
        assert frame == {"ok": True, "id": 1, "codec": CODEC_JSON}


# -- negotiated binary connections over real daemons -----------------------


class TestBinaryDaemon:
    def test_threaded_server_binary_round_trip(self, trained,
                                               tiny_dataset, unix_path):
        X = _f32(tiny_dataset.matrix(trained.feature_names_))
        with ScoringDaemon(trained, socket_path=unix_path, workers=2):
            with ScoringClient(socket_path=unix_path,
                               codec=CODEC_BINARY) as client:
                assert client.codec == CODEC_BINARY
                assert client.predict_batch(X) == \
                    [int(p) for p in trained.predict_batch(X)]
                assert client.predict(list(X[0])) == trained.predict(X[0])
                assert client.info()["model_family"] == "tree"
                from repro.api import AdminClient

                assert (AdminClient(client).stats()["server"]["codec"]
                        ["offered"]) == list(DEFAULT_CODECS)

    def test_eventloop_binary_matches_json_byte_identically(
            self, trained, tiny_dataset, unix_path):
        """Acceptance: mixed JSON + binary clients on one fleet daemon
        produce identical predictions for f32-identical inputs."""
        from repro.api.fleet import MicroBatcher, ModelFleet, ModelPool

        X = _f32(tiny_dataset.matrix(trained.feature_names_))
        fleet = ModelFleet(ModelPool(), MicroBatcher(), default=trained)
        with ScoringDaemon(fleet=fleet, socket_path=unix_path, workers=2):
            with ScoringClient(socket_path=unix_path) as json_client, \
                    ScoringClient(socket_path=unix_path,
                                  codec=CODEC_BINARY) as bin_client:
                assert json_client.codec == CODEC_JSON
                assert bin_client.codec == CODEC_BINARY
                assert bin_client.predict_batch(X) == \
                    json_client.predict_batch(X)
                assert bin_client.predict_pipelined(X) == \
                    json_client.predict_pipelined(X)
                assert bin_client.info() == json_client.info()

    def test_json_pinned_daemon_declines_binary(self, trained,
                                                tiny_dataset, unix_path):
        X = tiny_dataset.matrix(trained.feature_names_)
        with ScoringDaemon(trained, socket_path=unix_path, workers=2,
                           codecs=(CODEC_JSON,)):
            with ScoringClient(socket_path=unix_path,
                               codec=CODEC_BINARY) as client:
                # hello answered {"codec": "json"}: stay on JSON, work
                assert client.codec == CODEC_JSON
                assert client.predict_batch(X) == \
                    [int(p) for p in trained.predict_batch(X)]

    def test_unknown_codec_hello_falls_back_raw(self, trained, unix_path):
        with ScoringDaemon(trained, socket_path=unix_path, workers=2):
            sock = _connect(unix_path)
            with sock:
                sock.sendall(b'{"cmd": "hello", "id": 1, '
                             b'"codecs": ["zstd-9000"]}\n')
                frame = json.loads(_recv_line(sock))
                assert frame == {"ok": True, "id": 1,
                                 "codec": CODEC_JSON}
                sock.sendall(b'{"cmd": "info"}\n')
                assert json.loads(_recv_line(sock))["ok"] is True

    @pytest.mark.parametrize("fleet_mode", [False, True])
    def test_binary_garbage_mid_stream_typed_error_then_teardown(
            self, trained, unix_path, fleet_mode):
        """Acceptance: garbage after a binary handshake yields a typed
        error frame and a clean connection teardown, on both servers."""
        kwargs: dict = {"classifier": trained}
        if fleet_mode:
            from repro.api.fleet import ModelFleet, ModelPool

            kwargs = {"fleet": ModelFleet(ModelPool(), default=trained)}
        with ScoringDaemon(socket_path=unix_path, workers=2, **kwargs):
            sock = _connect(unix_path)
            with sock:
                sock.sendall(b'{"cmd": "hello", "id": 1, '
                             b'"codecs": ["binary-v1"]}\n')
                assert json.loads(_recv_line(sock))["codec"] == \
                    CODEC_BINARY
                sock.sendall(HEADER.pack(4, 0x7F) + b"junk")
                frame = _recv_binary_frame(sock)
                assert frame[0] == FRAME_JSON
                error = json.loads(frame[1:])
                assert error["ok"] is False
                assert error["code"] == ERROR_INVALID_FRAME
                assert sock.recv(1) == b""  # clean teardown

    def test_oversized_binary_frame_typed_error_then_teardown(
            self, trained, unix_path):
        with ScoringDaemon(trained, socket_path=unix_path, workers=2):
            sock = _connect(unix_path)
            with sock:
                sock.sendall(b'{"cmd": "hello", "codecs": ["binary-v1"]}\n')
                _recv_line(sock)
                sock.sendall(HEADER.pack(MAX_REQUEST_BYTES + 1,
                                         FRAME_BATCH))
                frame = _recv_binary_frame(sock)
                error = json.loads(frame[1:])
                assert error["code"] == ERROR_TOO_LARGE
                assert sock.recv(1) == b""

    def test_stats_codec_section_counts_binary_traffic(
            self, trained, tiny_dataset, unix_path):
        X = _f32(tiny_dataset.matrix(trained.feature_names_))
        with ScoringDaemon(trained, socket_path=unix_path,
                           workers=2) as daemon:
            with ScoringClient(socket_path=unix_path,
                               codec=CODEC_BINARY) as client:
                client.predict_batch(X)
            with ScoringClient(socket_path=unix_path) as client:
                client.info()
            # counters fold when the server reaps the closed
            # connection, a moment after the client's close() returns
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                section = daemon.stats()["codec"]
                if sum(section["connections"].values()) >= 2:
                    break
                time.sleep(0.01)
            assert section["connections"].get(CODEC_BINARY, 0) >= 1
            assert section["connections"].get(CODEC_JSON, 0) >= 1
            assert section["requests"].get(CODEC_BINARY, 0) >= 1
            assert section["bytes_in"].get(CODEC_BINARY, 0) > 0
            assert section["bytes_out"].get(CODEC_BINARY, 0) > 0


# -- binary-v2 stream frames -----------------------------------------------


class TestBinaryV2StreamFrames:
    """Raw-byte golden vectors for the 0x03/0x83 stream frames."""

    def test_predict_stream_golden_bytes(self):
        raw = BINARY_V2_CODEC.encode_predict_stream(
            [7, 9], [[1.5, -2.0], [0.25, 4.0]])
        expected = (
            struct.pack("<IB", 8 + 16 + 16, FRAME_PREDICT_STREAM)
            + struct.pack("<II", 2, 2)            # count, cols
            + struct.pack("<qq", 7, 9)            # req ids
            + struct.pack("<ffff", 1.5, -2.0, 0.25, 4.0)
        )
        assert raw == expected

    def test_predict_stream_golden_decode(self):
        payload = (
            struct.pack("<II", 2, 2)
            + struct.pack("<qq", 7, 9)
            + struct.pack("<ffff", 1.5, -2.0, 0.25, 4.0)
        )
        request, error = BINARY_V2_CODEC.decode_request(
            bytes([FRAME_PREDICT_STREAM]) + payload)
        assert error is None
        assert type(request) is PredictStream
        assert len(request) == 2
        assert request.ids.tolist() == [7, 9]
        np.testing.assert_array_equal(
            request.rows, np.asarray([[1.5, -2.0], [0.25, 4.0]],
                                     dtype="<f4"))

    def test_predictions_stream_golden_bytes(self):
        raw = BINARY_V2_CODEC.encode_predictions_stream([7, 9], [3, 1])
        expected = (
            struct.pack("<IB", 4 + 16 + 8, FRAME_PREDICTIONS_STREAM)
            + struct.pack("<I", 2)                # count
            + struct.pack("<qq", 7, 9)            # req ids
            + struct.pack("<ii", 3, 1)            # predictions
        )
        assert raw == expected

    def test_predictions_stream_golden_decode(self):
        payload = (struct.pack("<I", 2) + struct.pack("<qq", 7, 9)
                   + struct.pack("<ii", 3, 1))
        response = BINARY_V2_CODEC.decode_response(
            bytes([FRAME_PREDICTIONS_STREAM]) + payload)
        assert response["ok"] is True
        ids, predictions = response["stream"]
        assert ids.tolist() == [7, 9]
        assert predictions.tolist() == [3, 1]

    def test_stream_roundtrip_preserves_f32_bits(self):
        rows = np.asarray(
            [[np.float32(1) / 3, np.float32(-0.0)]], dtype="<f4")
        raw = BINARY_V2_CODEC.encode_predict_stream([1], rows)
        request, error = BINARY_V2_CODEC.decode_request(raw[4:])
        assert error is None
        assert request.rows.tobytes() == rows.tobytes()

    def test_truncated_stream_payload_draws_invalid_frame(self):
        good = BINARY_V2_CODEC.encode_predict_stream(
            [1, 2], [[1.0, 2.0], [3.0, 4.0]])
        _, error = BINARY_V2_CODEC.decode_request(good[4:-4])
        assert error["code"] == ERROR_INVALID_FRAME

    def test_zero_row_stream_draws_invalid_frame(self):
        payload = struct.pack("<II", 0, 3)
        _, error = BINARY_V2_CODEC.decode_request(
            bytes([FRAME_PREDICT_STREAM]) + payload)
        assert error["code"] == ERROR_INVALID_FRAME

    def test_short_response_payload_raises(self):
        good = BINARY_V2_CODEC.encode_predictions_stream([1, 2], [0, 0])
        with pytest.raises(ValueError):
            BINARY_V2_CODEC.decode_response(good[4:-4])

    def test_v2_still_speaks_every_v1_frame(self):
        raw = BINARY_V2_CODEC.encode_request(
            {"id": 3, "features": [0.5, 1.25]})
        request, error = BINARY_V2_CODEC.decode_request(raw[4:])
        assert error is None
        assert request == {"features": [0.5, 1.25], "id": 3}
        raw = BINARY_V2_CODEC.encode_request({"cmd": "info", "id": 1})
        assert raw[4] == FRAME_JSON

    def test_wire_session_counts_stream_rows_as_requests(self):
        wire = WireSession()
        wire.negotiate({"cmd": "hello", "codecs": [CODEC_BINARY_V2]})
        assert wire.codec is BINARY_V2_CODEC
        wire.push(BINARY_V2_CODEC.encode_predict_stream(
            [1, 2, 3], [[1.0], [2.0], [3.0]]))
        request, error = wire.decode(wire.next_frame())
        assert error is None and len(request) == 3
        assert wire.requests == {CODEC_BINARY_V2: 3}


# -- negotiated binary-v2 connections over real daemons --------------------


class TestBinaryV2Daemon:
    @pytest.mark.parametrize("fleet_mode", [False, True])
    def test_mixed_codec_clients_byte_identical(
            self, trained, tiny_dataset, unix_path, fleet_mode):
        """Acceptance: json + v1 + v2 clients against one daemon score
        f32-identical inputs to identical predictions, on both the
        threaded and the event-loop transports."""
        X = _f32(tiny_dataset.matrix(trained.feature_names_))
        kwargs: dict = {"classifier": trained}
        if fleet_mode:
            from repro.api.fleet import MicroBatcher, ModelFleet, ModelPool

            kwargs = {"fleet": ModelFleet(ModelPool(), MicroBatcher(),
                                          default=trained)}
        # three concurrent clients: the threaded transport parks one
        # worker thread per live connection
        with ScoringDaemon(socket_path=unix_path, workers=4, **kwargs):
            with ScoringClient(socket_path=unix_path) as js, \
                    ScoringClient(socket_path=unix_path,
                                  codec=CODEC_BINARY) as v1, \
                    ScoringClient(socket_path=unix_path,
                                  codec=CODEC_BINARY_V2) as v2:
                assert js.codec == CODEC_JSON
                assert v1.codec == CODEC_BINARY
                assert v2.codec == CODEC_BINARY_V2
                expected = js.predict_pipelined(X, window=16)
                assert v1.predict_pipelined(X, window=16) == expected
                assert v2.predict_pipelined(X, window=16) == expected
                assert v2.predict_batch(X) == js.predict_batch(X)
                assert v2.predict(list(X[0])) == js.predict(list(X[0]))

    def test_eventloop_counts_stream_frames_and_rows(
            self, trained, tiny_dataset, unix_path):
        """The coalesced zero-decode path actually runs: a pipelined v2
        window must arrive as a few multi-row frames, not row frames."""
        from repro.api.fleet import MicroBatcher, ModelFleet, ModelPool

        X = _f32(tiny_dataset.matrix(trained.feature_names_))
        fleet = ModelFleet(ModelPool(), MicroBatcher(), default=trained)
        with ScoringDaemon(fleet=fleet, socket_path=unix_path,
                           workers=2):
            with ScoringClient(socket_path=unix_path,
                               codec=CODEC_BINARY_V2) as client:
                predictions = client.predict_pipelined(X, window=32)
                from repro.api import AdminClient

                server = AdminClient(client).stats()["server"]
            assert predictions == [int(p) for p in
                                   trained.predict_batch(X)]
            assert server["stream_rows"] >= len(X)
            assert 1 <= server["stream_frames"] < len(X)

    def test_garbage_stream_frame_typed_error_then_teardown(
            self, trained, unix_path):
        """A truncated 0x03 frame yields one typed error and a clean
        connection teardown — no partial answers, no hang."""
        from repro.api.fleet import ModelFleet, ModelPool

        fleet = ModelFleet(ModelPool(), default=trained)
        with ScoringDaemon(fleet=fleet, socket_path=unix_path, workers=2):
            sock = _connect(unix_path)
            with sock:
                sock.sendall(b'{"cmd": "hello", "id": 1, '
                             b'"codecs": ["binary-v2"]}\n')
                assert json.loads(_recv_line(sock))["codec"] == \
                    CODEC_BINARY_V2
                # declares 3 rows x 4 cols but ships 4 payload bytes
                sock.sendall(HEADER.pack(8 + 4, FRAME_PREDICT_STREAM)
                             + struct.pack("<II", 3, 4) + b"\0\0\0\0")
                frame = _recv_binary_frame(sock)
                assert frame[0] == FRAME_JSON
                error = json.loads(frame[1:])
                assert error["ok"] is False
                assert error["code"] == ERROR_INVALID_FRAME
                assert sock.recv(1) == b""  # clean teardown

    def test_column_mismatch_answers_every_row_id(
            self, trained, unix_path):
        """A well-formed stream whose rows don't match the model's
        feature count gets one typed error per req id — every id is
        answered, nothing is silently dropped."""
        from repro.api.fleet import ModelFleet, ModelPool

        fleet = ModelFleet(ModelPool(), default=trained)
        with ScoringDaemon(fleet=fleet, socket_path=unix_path, workers=2):
            sock = _connect(unix_path)
            with sock:
                sock.sendall(b'{"cmd": "hello", '
                             b'"codecs": ["binary-v2"]}\n')
                _recv_line(sock)
                sock.sendall(BINARY_V2_CODEC.encode_predict_stream(
                    [11, 12], [[1.0, 2.0], [3.0, 4.0]]))
                seen = set()
                for _ in range(2):
                    frame = _recv_binary_frame(sock)
                    assert frame[0] == FRAME_JSON
                    error = json.loads(frame[1:])
                    assert error["ok"] is False
                    assert error["code"] == ERROR_BAD_REQUEST
                    seen.add(error["id"])
                assert seen == {11, 12}

    def test_pipelined_reconnect_renegotiates_v2(
            self, trained, tiny_dataset, unix_path):
        """Acceptance: a pipelined v2 client that loses its daemon
        re-hellos on the fresh connection and stays on binary-v2."""
        X = _f32(tiny_dataset.matrix(trained.feature_names_))
        expected = [int(p) for p in trained.predict_batch(X)]
        daemon = ScoringDaemon(trained, socket_path=unix_path, workers=2)
        daemon.start()
        try:
            client = ScoringClient(socket_path=unix_path,
                                   codec=CODEC_BINARY_V2,
                                   reconnect_retries=4)
            with client:
                assert client.predict_pipelined(X) == expected
                assert client.codec == CODEC_BINARY_V2
                daemon.stop()
                daemon = ScoringDaemon(trained, socket_path=unix_path,
                                       workers=2)
                daemon.start()
                assert client.predict_pipelined(X) == expected
                assert client.codec == CODEC_BINARY_V2
        finally:
            daemon.stop()

    def test_v2_preference_downgrades_to_v1_server(
            self, trained, tiny_dataset, unix_path):
        """Against a server that only offers binary-v1, a v2-preferring
        client lands on v1 and pipelined scoring still completes."""
        X = _f32(tiny_dataset.matrix(trained.feature_names_))
        with ScoringDaemon(trained, socket_path=unix_path, workers=2,
                           codecs=(CODEC_BINARY, CODEC_JSON)):
            with ScoringClient(socket_path=unix_path,
                               codec=CODEC_BINARY_V2) as client:
                assert client.codec == CODEC_BINARY
                assert client.predict_pipelined(X) == \
                    [int(p) for p in trained.predict_batch(X)]

    def test_pipelined_restart_onto_json_only_finishes_all_rows(
            self, trained, tiny_dataset, unix_path):
        """If the replacement daemon negotiates away from binary-v2
        mid-pipelining, leftover rows finish as classic frames with
        identical predictions (same f32 inputs)."""
        X = _f32(tiny_dataset.matrix(trained.feature_names_))
        expected = [int(p) for p in trained.predict_batch(X)]
        daemon = ScoringDaemon(trained, socket_path=unix_path, workers=2)
        daemon.start()
        try:
            client = ScoringClient(socket_path=unix_path,
                                   codec=CODEC_BINARY_V2,
                                   reconnect_retries=4)
            with client:
                assert client.predict_pipelined(X) == expected
                daemon.stop()
                daemon = ScoringDaemon(trained, socket_path=unix_path,
                                       workers=2, codecs=(CODEC_JSON,))
                daemon.start()
                assert client.predict_pipelined(X) == expected
                assert client.codec == CODEC_JSON
        finally:
            daemon.stop()


class TestReconnectRenegotiation:
    def test_pipelined_resend_after_restart_renegotiates(
            self, trained, tiny_dataset, unix_path):
        """Acceptance: a pipelined client that loses its daemon mid-run
        re-negotiates the codec on the fresh connection and completes."""
        X = _f32(tiny_dataset.matrix(trained.feature_names_))
        expected = [int(p) for p in trained.predict_batch(X)]
        daemon = ScoringDaemon(trained, socket_path=unix_path, workers=2)
        daemon.start()
        try:
            client = ScoringClient(socket_path=unix_path,
                                   codec=CODEC_BINARY,
                                   reconnect_retries=4)
            with client:
                assert client.predict_pipelined(X) == expected
                assert client.codec == CODEC_BINARY
                daemon.stop()
                daemon = ScoringDaemon(trained, socket_path=unix_path,
                                       workers=2)
                daemon.start()
                # the dropped connection is re-dialled inside the
                # pipelined loop; the fresh connection must re-hello
                assert client.predict_pipelined(X) == expected
                assert client.codec == CODEC_BINARY
        finally:
            daemon.stop()

    def test_sequential_retry_against_json_only_restart(
            self, trained, tiny_dataset, unix_path):
        """A binary client whose daemon comes back JSON-pinned degrades
        to JSON transparently on reconnect."""
        X = _f32(tiny_dataset.matrix(trained.feature_names_))
        expected = [int(p) for p in trained.predict_batch(X)]
        daemon = ScoringDaemon(trained, socket_path=unix_path, workers=2)
        daemon.start()
        try:
            client = ScoringClient(socket_path=unix_path,
                                   codec=CODEC_BINARY,
                                   reconnect_retries=4)
            with client:
                assert client.predict_batch(X) == expected
                daemon.stop()
                daemon = ScoringDaemon(trained, socket_path=unix_path,
                                       workers=2, codecs=(CODEC_JSON,))
                daemon.start()
                assert client.predict_batch(X) == expected
                assert client.codec == CODEC_JSON
        finally:
            daemon.stop()

    def test_unknown_codec_preference_rejected_client_side(self):
        with pytest.raises(ScoringError):
            ScoringClient(socket_path="/nonexistent", codec="zstd-9000")
