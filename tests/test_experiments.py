"""Experiment driver tests on the tiny (real) dataset."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.dataset_stats import run_dataset_stats
from repro.experiments.figure2 import PANELS, run_figure2
from repro.experiments.headline import run_headline
from repro.experiments.optsets import (
    optimised_set,
    prune_by_importance,
    rank_features,
)
from repro.experiments.table4 import run_table4
from repro.experiments.ablation import run_pruning_sweep
from repro.features.sets import feature_names


class TestOptsets:
    def test_rank_features_orders_by_importance(self, tiny_dataset):
        ranking = rank_features(tiny_dataset, feature_names("static-all"),
                                repeats=2)
        scores = [score for _, score in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_prune_by_importance_coverage(self):
        ranking = [("a", 0.6), ("b", 0.25), ("c", 0.1), ("d", 0.05)]
        kept = prune_by_importance(ranking, coverage=0.8, min_features=1)
        assert kept == ["a", "b"]

    def test_prune_respects_min_features(self):
        ranking = [("a", 1.0), ("b", 0.0), ("c", 0.0)]
        kept = prune_by_importance(ranking, coverage=0.5, min_features=3)
        assert kept == ["a", "b", "c"]

    def test_optimised_set_is_subset(self, tiny_dataset):
        base = feature_names("static-all")
        kept = optimised_set(tiny_dataset, base, repeats=2)
        assert set(kept) <= set(base)
        assert len(kept) >= 3


class TestFigure2:
    def test_left_panel_series(self, tiny_dataset):
        result = run_figure2(tiny_dataset, "left", repeats=2)
        assert set(result.series) == set(PANELS["left"])
        for curve in result.series.values():
            assert len(curve) == 9
            assert all(0.0 <= v <= 1.0 for v in curve)
            # tolerance accuracy is monotone in the threshold
            assert curve == sorted(curve)

    def test_right_panel_series(self, tiny_dataset):
        result = run_figure2(tiny_dataset, "right", repeats=2)
        assert set(result.series) == set(PANELS["right"])
        assert "static-opt" in result.opt_features

    def test_unknown_panel_rejected(self, tiny_dataset):
        with pytest.raises(ExperimentError):
            run_figure2(tiny_dataset, "middle")

    def test_render(self, tiny_dataset):
        result = run_figure2(tiny_dataset, "left", repeats=2)
        text = result.render()
        assert "Figure 2" in text and "always-8" in text

    def test_accuracy_at(self, tiny_dataset):
        result = run_figure2(tiny_dataset, "left", repeats=2)
        assert result.accuracy_at("dynamic", 0) \
            == result.series["dynamic"][0]


class TestTable4:
    def test_rows_and_percentages(self, tiny_dataset):
        result = run_table4(tiny_dataset, repeats=2)
        assert 0 < len(result.dynamic_rows) <= 12
        assert 0 < len(result.static_rows) <= 6
        for label, pes, pct in result.dynamic_rows:
            assert 1 <= pes <= 8
            assert 0.0 <= pct <= 100.0
        text = result.render()
        assert "Dynamic Features" in text and "Static Features" in text

    def test_dynamic_rows_sorted(self, tiny_dataset):
        result = run_table4(tiny_dataset, repeats=2)
        pcts = [row[2] for row in result.dynamic_rows]
        assert pcts == sorted(pcts, reverse=True)


class TestDatasetStats:
    def test_counts_add_up(self, tiny_dataset):
        stats = run_dataset_stats(tiny_dataset)
        assert stats.n_samples == len(tiny_dataset)
        assert sum(stats.class_counts.values()) == stats.n_samples
        assert sum(stats.suite_counts.values()) == stats.n_samples
        assert stats.render()

    def test_majority_and_share(self, tiny_dataset):
        stats = run_dataset_stats(tiny_dataset)
        label = stats.majority_label
        assert stats.class_share(label) == max(
            stats.class_share(k) for k in stats.class_counts)


class TestHeadline:
    def test_headline_fields(self, tiny_dataset):
        result = run_headline(tiny_dataset, repeats=2)
        assert 0.0 <= result.static_opt_at_0 <= 1.0
        assert result.static_opt_at_8 >= result.static_opt_at_0
        assert isinstance(result.learned_beats_always8, bool)
        assert "static-opt" in result.render()


class TestPruningSweep:
    def test_sweep_points(self, tiny_dataset):
        sweep = run_pruning_sweep(tiny_dataset, repeats=2, ks=(1, 3, 6))
        assert [k for k, _ in sweep.points] == [1, 3, 6]
        assert all(0.0 <= acc <= 1.0 for _, acc in sweep.points)
        assert sweep.render()
