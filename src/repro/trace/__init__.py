"""GVSOC-style execution traces (the paper's trace-analysis software).

The engine can stream its events as text lines shaped like GVSOC traces
(``<cycle> <component-path> <payload>``).  The :class:`TraceAnalyser`
re-parses those lines with regular expressions and dispatches them to a
hierarchy of listeners — :class:`PULPListeners` holding 8
:class:`CoreListener`, 16 :class:`L1BankListener` and 32
:class:`L2BankListener` instances, exactly as §IV.A of the paper
describes — from which the dynamic features and the energy counters can
be rebuilt.  Tests assert that the rebuilt counters equal the engine's
direct counters.
"""

from repro.trace.format import TRACE_LINE_RE, format_line, parse_line
from repro.trace.writer import TraceWriter
from repro.trace.listeners import (
    CoreListener,
    IcacheListener,
    L1BankListener,
    L2BankListener,
    PULPListeners,
)
from repro.trace.analyser import TraceAnalyser

__all__ = [
    "TRACE_LINE_RE",
    "format_line",
    "parse_line",
    "TraceWriter",
    "CoreListener",
    "L1BankListener",
    "L2BankListener",
    "IcacheListener",
    "PULPListeners",
    "TraceAnalyser",
]
