"""Self-healing shard supervision (:mod:`repro.api.supervisor`).

Covers the registry epoch, supervisor argument validation, crash ->
respawn healing (direct ``check_once`` and the background thread),
graceful drain, rolling restart under sustained pipelined load (zero
failed requests), the zero-downtime hot swap (canary-score then
promote, byte-identical everywhere) and zombie-free shutdown after a
supervised respawn.
"""

import functools
import json
import multiprocessing
import os
import signal
import threading
import time

import pytest

from repro.api import (
    AdminClient,
    Classifier,
    HotSwapReport,
    ReproConfig,
    ScoringClient,
    ShardManager,
    ShardSupervisor,
    classifier_factory,
    registry_epoch,
)
from repro.api.shard import (
    REGISTRY_VERSION,
    read_registry,
    write_registry,
)
from repro.errors import DaemonError

TREE = "tree:static-all:unit"
AGG = "tree:static-agg:unit"


@pytest.fixture()
def trained(tiny_dataset) -> Classifier:
    return Classifier(ReproConfig(profile="unit")).train(tiny_dataset)


@pytest.fixture()
def artifact(trained, tmp_path) -> str:
    path = str(tmp_path / "model.json")
    trained.save(path)
    return path


def _wait(predicate, timeout: float = 20.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


def _variant_fleet_factory(paths: dict):
    """Shard factory hosting prebuilt artifacts under fixed specs."""
    from repro.api import Classifier, ModelFleet, ModelPool
    from repro.errors import FleetError

    variants = {spec: Classifier.load(path)
                for spec, path in paths.items()}

    def loader(key):
        try:
            return variants[key.spec]
        except KeyError:
            raise FleetError(f"no artifact for {key.spec!r}")

    pool = ModelPool(loader=loader, default_tag="unit")
    return ModelFleet(pool, None, default=variants[TREE])


class TestRegistryEpoch:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "fleet.sock")
        rows = [{"index": 0, "path": "p.0", "pid": 1}]
        write_registry(path, rows, epoch=7)
        assert registry_epoch(path) == 7
        assert read_registry(path) == rows

    def test_pre_epoch_registry_reads_as_zero(self, tmp_path):
        path = str(tmp_path / "fleet.sock")
        payload = {"repro_shards": REGISTRY_VERSION, "base": path,
                   "shards": [{"index": 0, "path": "p.0", "pid": 1}]}
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        assert registry_epoch(path) == 0

    def test_non_registry_is_none(self, tmp_path):
        path = str(tmp_path / "junk")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not a registry\n")
        assert registry_epoch(path) is None
        assert registry_epoch(str(tmp_path / "missing")) is None


class TestValidation:
    def test_bad_supervisor_arguments(self, tmp_path):
        manager = ShardManager(None, shards=1,
                               socket_path=str(tmp_path / "s.sock"))
        with pytest.raises(DaemonError, match="interval"):
            ShardSupervisor(manager, interval=0)
        with pytest.raises(DaemonError, match="max_probe_failures"):
            ShardSupervisor(manager, max_probe_failures=0)

    def test_hot_swap_needs_unix_sockets(self):
        manager = ShardManager(None, shards=1, tcp=("127.0.0.1", 0))
        supervisor = ShardSupervisor(manager)
        with pytest.raises(DaemonError, match="unix-socket"):
            supervisor.hot_swap("tree:static-agg", [[0.0]])

    def test_hot_swap_rejects_bad_probe_set(self, tmp_path):
        manager = ShardManager(None, shards=2,
                               socket_path=str(tmp_path / "s.sock"))
        supervisor = ShardSupervisor(manager)
        with pytest.raises(DaemonError, match="non-empty probe set"):
            supervisor.hot_swap("tree:static-agg", [])
        with pytest.raises(DaemonError, match="no shard with index"):
            supervisor.hot_swap("tree:static-agg", [[0.0]], canary=5)

    def test_start_twice_is_an_error(self, tmp_path):
        manager = ShardManager(None, shards=1,
                               socket_path=str(tmp_path / "s.sock"))
        supervisor = ShardSupervisor(manager, interval=0.2)
        # no pass ever runs: the manager raises DaemonError on proc()
        # and check_once treats that as "manager stopped"
        supervisor.start()
        try:
            with pytest.raises(DaemonError, match="already running"):
                supervisor.start()
        finally:
            supervisor.stop()


class TestHealing:
    def test_check_once_respawns_a_killed_shard(
            self, trained, tiny_dataset, artifact, tmp_path):
        """Acceptance: crash detection -> respawn -> registry refresh."""
        rows = tiny_dataset.matrix(trained.feature_names_).tolist()
        expected = [int(trained.predict(row)) for row in rows]
        base = str(tmp_path / "heal.sock")
        factory = functools.partial(classifier_factory, artifact)
        with ShardManager(factory, shards=2, socket_path=base,
                          workers=2) as manager:
            supervisor = ShardSupervisor(manager)
            old_pid = manager.pids[0]
            epoch_before = manager.epoch
            os.kill(old_pid, signal.SIGKILL)
            assert _wait(lambda: not manager.proc(0).is_alive())

            assert supervisor.check_once() == [0]

            new_proc = manager.proc(0)
            assert new_proc.is_alive()
            assert new_proc.pid != old_pid
            registry = read_registry(base)
            assert {s["index"]: s["pid"] for s in registry} == \
                {0: new_proc.pid, 1: manager.pids[1]}
            assert registry_epoch(base) == manager.epoch > epoch_before
            events = [e for e in supervisor.events
                      if e["event"] == "respawn"]
            assert events == [{"event": "respawn", "shard": 0,
                               "pid": new_proc.pid, "reason": "exit"}]
            # the replacement serves through the shared endpoint
            with ScoringClient(socket_path=base) as client:
                assert client.predict_pipelined(rows) == expected

    def test_background_thread_heals(self, trained, tiny_dataset,
                                     artifact, tmp_path):
        rows = tiny_dataset.matrix(trained.feature_names_).tolist()
        expected = [int(trained.predict(row)) for row in rows]
        base = str(tmp_path / "loop.sock")
        factory = functools.partial(classifier_factory, artifact)
        with ShardManager(factory, shards=2, socket_path=base,
                          workers=2) as manager:
            with ShardSupervisor(manager, interval=0.1):
                victim = manager.pids[1]
                os.kill(victim, signal.SIGKILL)
                assert _wait(lambda: manager.proc(1).is_alive()
                             and manager.pids[1] != victim)
                assert _wait(lambda: (read_registry(base) or [])
                             and {s["pid"] for s in read_registry(base)}
                             == set(manager.pids))
            with ScoringClient(socket_path=base) as client:
                assert client.predict_pipelined(rows) == expected

    def test_stop_reaps_respawned_children(self, artifact, tmp_path):
        """Satellite: a supervised respawn leaves no zombies behind."""
        base = str(tmp_path / "reap.sock")
        factory = functools.partial(classifier_factory, artifact)
        manager = ShardManager(factory, shards=2, socket_path=base,
                               workers=2)
        with manager:
            supervisor = ShardSupervisor(manager)
            os.kill(manager.pids[0], signal.SIGKILL)
            assert _wait(lambda: not manager.proc(0).is_alive())
            assert supervisor.check_once() == [0]
        # stop() ran: both current shards and the retired corpse are
        # reaped -- no zombie children, no leftover endpoint files
        assert multiprocessing.active_children() == []
        assert not os.path.exists(base)


class TestDrainShard:
    def test_drain_retires_one_shard_gracefully(
            self, trained, tiny_dataset, artifact, tmp_path):
        rows = tiny_dataset.matrix(trained.feature_names_).tolist()
        expected = [int(trained.predict(row)) for row in rows]
        base = str(tmp_path / "drain.sock")
        factory = functools.partial(classifier_factory, artifact)
        with ShardManager(factory, shards=2, socket_path=base,
                          workers=2) as manager:
            supervisor = ShardSupervisor(manager)
            drained_pid = supervisor.drain_shard(1, timeout=30.0)
            assert drained_pid == manager.proc(1).pid
            proc = manager.proc(1)
            assert not proc.is_alive()
            # exit code 0: the shard finished its in-flight work and
            # ran its clean shutdown, it was not killed
            assert proc.exitcode == 0
            assert [s["index"] for s in read_registry(base)] == [0]
            # the drained shard stays excluded: healing must not fight
            # the operator by resurrecting it
            assert supervisor.check_once() == []
            assert not manager.proc(1).is_alive()
            # the survivor keeps serving the shared endpoint
            with ScoringClient(socket_path=base) as client:
                assert client.predict_pipelined(rows) == expected


class TestRollingRestart:
    def test_restart_under_load_zero_failures(
            self, trained, tiny_dataset, artifact, tmp_path):
        """Acceptance: every pid turns over while a pipelined client
        hammers the fleet, and not one request fails."""
        rows = tiny_dataset.matrix(trained.feature_names_).tolist()
        expected = [int(trained.predict(row)) for row in rows]
        base = str(tmp_path / "roll.sock")
        factory = functools.partial(classifier_factory, artifact)
        with ShardManager(factory, shards=2, socket_path=base,
                          workers=2) as manager:
            supervisor = ShardSupervisor(manager)
            pids_before = list(manager.pids)
            done = threading.Event()
            outcomes: list = []

            def hammer() -> None:
                with ScoringClient(socket_path=base,
                                   reconnect_retries=8) as client:
                    while not done.is_set():
                        try:
                            got = client.predict_pipelined(rows, window=8)
                        except Exception as exc:
                            outcomes.append(exc)
                            return
                        outcomes.append(got == expected)

            load = threading.Thread(target=hammer)
            load.start()
            try:
                new_pids = supervisor.rolling_restart()
            finally:
                done.set()
                load.join(60)
            assert not load.is_alive()
            assert outcomes and all(o is True for o in outcomes)
            assert len(new_pids) == 2
            assert not set(new_pids) & set(pids_before)
            registry = read_registry(base)
            assert sorted(s["pid"] for s in registry) == sorted(new_pids)
            restarted = [e["shard"] for e in supervisor.events
                         if e["event"] == "restart"]
            assert restarted == [0, 1]


class TestHotSwap:
    def test_canary_gate_then_promote_byte_identical(
            self, trained, tiny_dataset, tmp_path):
        """Acceptance: warm -> canary-score -> promote, and every
        shard's default route answers byte-identically."""
        agg = Classifier(ReproConfig(
            profile="unit", feature_set="static-agg")).train(tiny_dataset)
        paths = {TREE: str(tmp_path / "tree.json"),
                 AGG: str(tmp_path / "agg.json")}
        trained.save(paths[TREE])
        agg.save(paths[AGG])
        rows = tiny_dataset.matrix(agg.feature_names_).tolist()
        expected = tuple(int(agg.predict(row)) for row in rows)

        base = str(tmp_path / "swap.sock")
        factory = functools.partial(_variant_fleet_factory, paths)
        with ShardManager(factory, shards=2, socket_path=base,
                          workers=2) as manager:
            supervisor = ShardSupervisor(manager)

            # a wrong expectation aborts before any traffic shifts
            wrong = tuple((v + 1) % 4 for v in expected)
            with pytest.raises(DaemonError, match="diverge"):
                supervisor.hot_swap("tree:static-agg", rows,
                                    expected=wrong)
            with AdminClient(socket_path=f"{base}.0") as admin:
                assert admin.list_models().default.model == TREE

            report = supervisor.hot_swap("tree:static-agg", rows,
                                         expected=expected)
            assert isinstance(report, HotSwapReport)
            assert report.model == AGG
            assert report.canary_shard == 0
            assert report.promoted == (0, 1)
            assert report.predictions == expected
            assert report.shard_predictions == (expected, expected)
            assert report.identical

            # both shards now serve the new model on the default route
            for index in range(2):
                with AdminClient(socket_path=f"{base}.{index}") as admin:
                    assert admin.list_models().default.model == AGG
            with ScoringClient(socket_path=base) as client:
                assert client.predict_batch(rows) == list(expected)
            swaps = [e for e in supervisor.events
                     if e["event"] == "hot_swap"]
            assert swaps == [{"event": "hot_swap", "shard": None,
                              "model": AGG, "identical": True}]
