"""Dataset statistics (§IV.B).

The paper reports 448 samples with every class holding between 5% and
15% of the dataset except class 8, which holds 34.8%.  This experiment
regenerates the class distribution plus per-suite/dtype/size breakdowns.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dataset.build import Dataset
from repro.dataset.table import ColumnTable


@dataclass
class DatasetStats:
    n_samples: int
    class_counts: dict = field(default_factory=dict)
    suite_counts: dict = field(default_factory=dict)
    dtype_counts: dict = field(default_factory=dict)
    size_counts: dict = field(default_factory=dict)

    def class_share(self, label: int) -> float:
        return 100.0 * self.class_counts.get(label, 0) / self.n_samples

    @property
    def majority_label(self) -> int:
        return max(self.class_counts, key=self.class_counts.get)

    def render(self) -> str:
        classes = ColumnTable(["class", "samples", "share %"])
        for label in sorted(self.class_counts):
            classes.add_row(label, self.class_counts[label],
                            self.class_share(label))
        extras = ColumnTable(["group", "key", "samples"])
        for key, count in sorted(self.suite_counts.items()):
            extras.add_row("suite", key, count)
        for key, count in sorted(self.dtype_counts.items()):
            extras.add_row("dtype", key, count)
        for key, count in sorted(self.size_counts.items()):
            extras.add_row("size", key, count)
        return "\n".join([
            f"Dataset statistics ({self.n_samples} samples)",
            classes.render(float_fmt="{:.1f}"), "",
            extras.render(),
        ])


def run_dataset_stats(dataset: Dataset) -> DatasetStats:
    stats = DatasetStats(n_samples=len(dataset))
    stats.class_counts = dataset.class_distribution()
    for sample in dataset.samples:
        stats.suite_counts[sample.suite] = (
            stats.suite_counts.get(sample.suite, 0) + 1)
        stats.dtype_counts[sample.dtype] = (
            stats.dtype_counts.get(sample.dtype, 0) + 1)
        stats.size_counts[sample.size_bytes] = (
            stats.size_counts.get(sample.size_bytes, 0) + 1)
    return stats
