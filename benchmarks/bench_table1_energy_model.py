"""E5 — Table I: the per-component energy model (input artefact).

Regenerates the table from the default EnergyModel (a consistency check
that the implementation carries the published numbers) and benchmarks
the energy integration over one simulation's counters.
"""

from repro.dataset.registry import get_kernel_spec
from repro.energy.accounting import compute_energy
from repro.energy.model import EnergyModel
from repro.energy.report import format_model_table
from repro.ir.types import DType
from repro.sim.engine import simulate

from benchmarks.conftest import write_artifact

# (component, region, fJ) spot checks straight from the paper.
_PAPER_SPOT_CHECKS = [
    ("pe", "nop", 1212.0), ("pe", "alu", 2558.0), ("pe", "l1", 3242.0),
    ("fpu", "operative", 299.0), ("icache", "refill", 5932.0),
]


def test_table1_regeneration(benchmark):
    model = EnergyModel.paper_table1()
    write_artifact("table1_energy_model.txt", format_model_table(model))

    for group, field, expected in _PAPER_SPOT_CHECKS:
        assert getattr(getattr(model, group), field) == expected

    counters = simulate(get_kernel_spec("gemm").build(DType.FP32, 2048), 8)

    breakdown = benchmark(compute_energy, counters, model)
    assert breakdown.total > 0
