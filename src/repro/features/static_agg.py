"""AGG static features (paper Table IIa).

The aggregate combinations used by Grewe et al. to feed their decision
tree, restricted to the ones that survive on PULP:

* ``F1 = transfer / (op + tcdm)`` — bytes moved per instruction;
* ``F2`` is dropped (it needs the coalescing metric, meaningless on a
  banked scratchpad);
* ``F3 = avgws`` — parallel work per region;
* ``F4 = op / tcdm`` — computation-to-memory ratio.
"""

from __future__ import annotations

from repro.ir.nodes import Kernel
from repro.features.static_raw import extract_raw

AGG_FEATURES = ("F1", "F3", "F4")


def agg_from_raw(raw: dict[str, float]) -> dict[str, float]:
    """Combine RAW metrics into the AGG features (zero-safe)."""
    denom_f1 = raw["op"] + raw["tcdm"]
    denom_f4 = raw["tcdm"]
    return {
        "F1": raw["transfer"] / denom_f1 if denom_f1 else 0.0,
        "F3": raw["avgws"],
        "F4": raw["op"] / denom_f4 if denom_f4 else 0.0,
    }


def extract_agg(kernel: Kernel) -> dict[str, float]:
    """Extract the AGG features directly from a kernel's IR."""
    return agg_from_raw(extract_raw(kernel))
