"""Hardware description of the PULP cluster instance used in the paper.

The paper targets the ``8c4f1p`` configuration of PULP: 8 RI5CY cores,
4 shared single-stage FPUs with a fixed core-to-FPU mapping, a 64 KiB
16-bank word-interleaved TCDM, a 512 KiB 32-bank L2 scratchpad 15 cycles
away, a shared instruction cache, a cluster DMA and an event unit that
implements barriers by clock-gating waiting cores.
"""

from repro.platform.config import ClusterConfig
from repro.platform.memory import MemoryMap, bank_of_word

__all__ = ["ClusterConfig", "MemoryMap", "bank_of_word"]
