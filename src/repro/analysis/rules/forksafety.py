"""RPL004 — live OS state must not cross a ``Process(...)`` boundary.

:class:`repro.api.shard.ShardManager` forks worker shards with
``multiprocessing``.  An object that already owns a socket, a running
thread, a selector or a held lock is only meaningful in the parent: a
forked child inherits a byte-copy whose file descriptors alias the
parent's and whose threads simply do not exist.  Passing such state via
``Process(target=..., args=(...))`` is therefore a latent bug even
when it "works" under the ``fork`` start method — and a hard pickle
error under ``spawn``/``forkserver``.

The rule inspects every ``*.Process(...)`` construction and flags
``self.<attr>`` values (and bare locals) in ``target=``/``args=`` whose
names look like live OS resources.  Plain data (factory callables,
endpoint strings, counts, ready events created *for* the child) passes
clean — which is exactly what ``ShardManager`` ships today.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.rules.base import Rule, dotted_name

#: attribute/local names that denote live OS state in this codebase.
_HAZARD = re.compile(
    r"(sock|listener|conn|thread|pool|executor|selector|pipe|"
    r"guard|server|daemon|client|lock)",
    re.IGNORECASE,
)

#: names that look hazardous but are fork-safe by design: a
#: multiprocessing Event/Queue created to talk *to* the child.
_SAFE = re.compile(r"(ready|event|queue)", re.IGNORECASE)


def _is_process_call(node: ast.Call) -> bool:
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] == "Process"


def _hazard(name: str | None) -> str | None:
    """The suspicious fragment of *name*, or ``None`` if it reads clean."""
    if name is None:
        return None
    attr = name.split(".")[-1]
    if _SAFE.search(attr):
        return None
    match = _HAZARD.search(attr)
    return match.group(0) if match else None


class ForkSafety(Rule):
    code = "RPL004"
    name = "fork-safety"
    rationale = (
        "objects constructed before a Process(...) fork must not "
        "carry sockets, threads, selectors or locks into the child; "
        "inherited descriptors alias the parent and threads vanish"
    )

    def check(self, project):
        for source in project.files:
            for node in ast.walk(source.tree):
                if isinstance(node, ast.Call) and _is_process_call(node):
                    yield from self._check_process(source, node)

    def _check_process(self, source, node: ast.Call):
        for keyword in node.keywords:
            if keyword.arg == "target":
                yield from self._check_value(
                    source, node, keyword.value, role="target"
                )
            elif keyword.arg == "args":
                values = (
                    keyword.value.elts
                    if isinstance(keyword.value, (ast.Tuple, ast.List))
                    else [keyword.value]
                )
                for value in values:
                    yield from self._check_value(source, node, value, role="args")

    def _check_value(self, source, call, value, role: str):
        name = dotted_name(value)
        if name is None and isinstance(value, ast.Attribute):
            # self.client._sock style chains still resolve via dotted_name;
            # anything else (subscripts, calls) is dynamic — skip it
            return
        fragment = _hazard(name)
        if fragment is None:
            return
        yield self.finding(
            source.path,
            call,
            f"{name!r} (matches {fragment!r}) is passed through "
            f"Process({role}=...); live sockets/threads/locks do not "
            f"survive the fork — pass plain data and rebuild the "
            f"resource in the child",
        )
