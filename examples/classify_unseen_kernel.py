"""Classify an unseen kernel: the paper's intended use case.

Run with::

    python examples/classify_unseen_kernel.py [--profile quick]

A thin client of :mod:`repro.api`: configure a classifier on the pruned
``static-opt`` (compile-time) feature set, train it on the labelled
dataset, and predict the minimum-energy core count of a kernel that is
NOT part of the dataset (the ``stencil_sync`` demo kernel) straight
from its IR.  The prediction is verified against the simulated ground
truth — including how much energy it would waste if wrong.
"""

import argparse

from repro.api import Classifier, ReproConfig
from repro.dataset.custom import stencil_sync
from repro.experiments.runner import load_dataset
from repro.ir.types import DType
from repro.sim.results import minimum_energy_label, sweep_cores


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--profile", default=None,
                        help="dataset profile (default: $REPRO_PROFILE "
                             "or 'paper')")
    args = parser.parse_args()

    print("loading the labelled dataset (may simulate on a cold cache)...")
    dataset = load_dataset(args.profile)
    print(f"  {len(dataset)} samples, classes "
          f"{dataset.class_distribution()}")

    # --- train on importance-pruned static features -----------------------
    config = ReproConfig(profile=dataset.profile,
                         feature_set="static-opt")
    clf = Classifier(config).train(dataset)
    kept = clf.feature_names_
    print(f"\nstatic-opt features ({len(kept)}): {', '.join(kept)}")

    # --- an unseen kernel -------------------------------------------------
    kernel = stencil_sync(DType.FP32, 4096)
    predicted = clf.predict(kernel)

    results = sweep_cores(kernel)
    true_label = minimum_energy_label(results)
    energies = {r.team_size: r.total_energy_fj for r in results}
    waste = 100.0 * (energies[predicted] / energies[true_label] - 1.0)

    print(f"\nunseen kernel: {kernel.name} (fp32, 4096 B)")
    print(f"  predicted minimum-energy cores: {predicted}")
    print(f"  simulated ground truth:         {true_label}")
    print(f"  energy wasted by prediction:    {waste:.2f}%")
    verdict = ("exact" if predicted == true_label else
               "acceptable" if waste <= 5.0 else "poor")
    print(f"  verdict at the paper's 5% tolerance: {verdict}")


if __name__ == "__main__":
    main()
