"""Dataset tests: sizing, registry, specs, cache, campaign."""

import pytest

from repro.dataset import (
    PAPER_SIZES,
    all_kernel_specs,
    build_dataset,
    enumerate_samples,
    get_kernel_spec,
)
from repro.dataset._sizing import (
    cube_side,
    elements,
    matrix_side,
    pow2_floor,
    vector_len,
)
from repro.dataset.cache import SimCache, kernel_fingerprint
from repro.dataset.spec import profile_sizes
from repro.dataset.table import ColumnTable
from repro.errors import DatasetError
from repro.ir.types import DType
from repro.platform.config import ClusterConfig
from repro.sim.engine import simulate


class TestSizing:
    def test_elements(self):
        assert elements(512) == 128

    def test_vector_len_splits_budget(self):
        assert vector_len(2048, 2) == 256

    @pytest.mark.parametrize("size", PAPER_SIZES)
    def test_matrix_side_fits_budget(self, size):
        n = matrix_side(size, 3)
        assert 3 * n * n * 4 <= size + 4 * n  # small slack only

    @pytest.mark.parametrize("size", PAPER_SIZES)
    def test_cube_side_fits_budget(self, size):
        m = cube_side(size, 2)
        assert 2 * m ** 3 * 4 <= size * 1.3  # rounding slack

    def test_pow2_floor(self):
        assert pow2_floor(1) == 2
        assert pow2_floor(64) == 64
        assert pow2_floor(100) == 64


class TestRegistry:
    def test_59_kernels(self):
        specs = all_kernel_specs()
        assert len(specs) == 59
        suites = {}
        for spec in specs:
            suites[spec.suite] = suites.get(spec.suite, 0) + 1
        assert suites == {"polybench": 26, "utdsp": 16, "custom": 17}

    def test_six_integer_only_kernels(self):
        int_only = [s.name for s in all_kernel_specs()
                    if s.dtypes == (DType.INT32,)]
        assert len(int_only) == 6

    def test_paper_sample_count(self):
        samples = enumerate_samples(all_kernel_specs(), PAPER_SIZES)
        assert len(samples) == 448

    def test_unknown_kernel_rejected(self):
        with pytest.raises(DatasetError):
            get_kernel_spec("nonexistent")

    def test_sample_ids_unique(self):
        samples = enumerate_samples(all_kernel_specs(), PAPER_SIZES)
        ids = [s.sample_id for s in samples]
        assert len(set(ids)) == len(ids)

    def test_profiles(self):
        assert profile_sizes("paper") == PAPER_SIZES
        assert len(profile_sizes("quick")) == 3
        with pytest.raises(DatasetError):
            profile_sizes("bogus")

    def test_int_only_kernel_rejects_fp(self):
        spec = get_kernel_spec("histogram")
        with pytest.raises(DatasetError):
            spec.build(DType.FP32, 512)


@pytest.mark.slow
class TestEveryKernelSimulates:
    """Every registry kernel builds and simulates at the smallest size."""

    @pytest.mark.parametrize(
        "name", [s.name for s in all_kernel_specs()])
    def test_kernel_runs(self, name):
        spec = get_kernel_spec(name)
        kernel = spec.build(spec.dtypes[0], 512)
        counters = simulate(kernel, 4)
        counters.validate()
        assert counters.cycles > 0


class TestFingerprintAndCache:
    def test_fingerprint_stable(self):
        spec = get_kernel_spec("gemm")
        config = ClusterConfig()
        a = kernel_fingerprint(spec.build(DType.INT32, 512), config)
        b = kernel_fingerprint(spec.build(DType.INT32, 512), config)
        assert a == b

    def test_fingerprint_sensitive_to_inputs(self):
        spec = get_kernel_spec("gemm")
        config = ClusterConfig()
        base = kernel_fingerprint(spec.build(DType.INT32, 512), config)
        assert base != kernel_fingerprint(spec.build(DType.FP32, 512),
                                          config)
        assert base != kernel_fingerprint(spec.build(DType.INT32, 2048),
                                          config)
        assert base != kernel_fingerprint(
            spec.build(DType.INT32, 512), config.with_(l2_latency=20))

    def test_cache_roundtrip(self, tmp_path):
        cache = SimCache(str(tmp_path))
        cache.store("a:int32:512", "fp1", {"1": {"cycles": 5}})
        assert cache.load("a:int32:512", "fp1") == {"1": {"cycles": 5}}
        assert cache.load("a:int32:512", "other") == {}
        assert cache.load("missing", "fp1") == {}


class TestCampaign:
    def test_tiny_dataset_contents(self, tiny_dataset):
        assert len(tiny_dataset) > 10
        labels = tiny_dataset.labels
        assert labels.min() >= 1 and labels.max() <= 8
        assert tiny_dataset.energy_matrix.shape == (len(tiny_dataset), 8)

    def test_labels_are_energy_minima(self, tiny_dataset):
        energy = tiny_dataset.energy_matrix
        labels = tiny_dataset.labels
        assert (energy.argmin(axis=1) + 1 == labels).all()

    def test_feature_matrix_assembly(self, tiny_dataset):
        X = tiny_dataset.matrix(["F1", "F3", "F4"])
        assert X.shape == (len(tiny_dataset), 3)
        Xd = tiny_dataset.matrix(["PE_sleep@8", "PE_idle@1"])
        assert (Xd[:, 1] >= 0).all()

    def test_dataset_save_load_roundtrip(self, tiny_dataset, tmp_path):
        path = str(tmp_path / "ds.json")
        tiny_dataset.save(path)
        from repro.dataset.build import Dataset
        loaded = Dataset.load(path)
        assert len(loaded) == len(tiny_dataset)
        assert (loaded.labels == tiny_dataset.labels).all()
        assert loaded.samples[0].static == tiny_dataset.samples[0].static

    def test_cache_reuse_is_consistent(self, tmp_path):
        specs = [get_kernel_spec("stream_triad")]
        cache_dir = str(tmp_path)
        first = build_dataset("unit", specs=specs, cache_dir=cache_dir)
        second = build_dataset("unit", specs=specs, cache_dir=cache_dir)
        assert (first.labels == second.labels).all()
        assert first.energy_matrix.tolist() \
            == second.energy_matrix.tolist()


class TestColumnTable:
    def test_render_alignment(self):
        table = ColumnTable(["name", "value"])
        table.add_row("alpha", 1.5)
        table.add_row("b", 22)
        text = table.render()
        assert "alpha" in text and "1.500" in text and "22" in text

    def test_row_arity_checked(self):
        table = ColumnTable(["a", "b"])
        with pytest.raises(DatasetError):
            table.add_row(1)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(DatasetError):
            ColumnTable(["a", "a"])
