"""Integrate an :class:`EnergyModel` over simulation counters.

The accounting follows the paper's scheme (§III.C): every *physical*
component contributes leakage over the whole kernel window regardless of
how many cores the team uses; switching energy follows the event counts;
a core cycle is exactly one of {issue of an opcode, active wait priced
as a NOP, clock-gated} so the per-core budget closes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.energy.model import EnergyModel
from repro.errors import EnergyModelError

if TYPE_CHECKING:  # avoid a circular package import at runtime
    from repro.sim.counters import ClusterCounters


@dataclass(frozen=True)
class EnergyBreakdown:
    """Per-component energies of one run, in femtojoules."""

    pe: float
    fpu: float
    l1: float
    l2: float
    icache: float
    dma: float
    other: float

    @property
    def total(self) -> float:
        return (self.pe + self.fpu + self.l1 + self.l2 + self.icache
                + self.dma + self.other)

    @property
    def total_pj(self) -> float:
        return self.total / 1000.0

    @property
    def total_uj(self) -> float:
        return self.total / 1e9

    def as_dict(self) -> dict[str, float]:
        return {"pe": self.pe, "fpu": self.fpu, "l1": self.l1,
                "l2": self.l2, "icache": self.icache, "dma": self.dma,
                "other": self.other, "total": self.total}


def compute_energy(counters: "ClusterCounters",
                   model: EnergyModel) -> EnergyBreakdown:
    """Energy breakdown of one simulated run under *model*."""
    cycles = counters.cycles
    if cycles < 0:
        raise EnergyModelError(f"negative cycle count {cycles}")

    pe = 0.0
    for core in counters.cores:
        wait_cycles = core.stall_cycles + core.nop_ops
        pe += (model.pe.leakage * cycles
               + model.pe.alu * core.alu_class_ops
               + model.pe.fp * core.fp_class_ops
               + model.pe.l1 * core.l1_ops
               + model.pe.l2 * core.l2_ops
               + model.pe.nop * wait_cycles
               + model.pe.cg * core.cg_cycles)

    fpu = 0.0
    for ops in counters.fpu_ops:
        idle = cycles - ops
        if idle < 0:
            raise EnergyModelError("FPU busier than the kernel window")
        fpu += (model.fpu.leakage * cycles
                + model.fpu.operative * ops
                + model.fpu.idle * idle)

    l1 = 0.0
    for bank in counters.l1_banks:
        idle = cycles - bank.accesses
        if idle < 0:
            raise EnergyModelError("L1 bank busier than the kernel window")
        l1 += (model.l1_bank.leakage * cycles
               + model.l1_bank.read * bank.reads
               + model.l1_bank.write * bank.writes
               + model.l1_bank.idle * idle)

    l2 = 0.0
    for bank in counters.l2_banks:
        idle = cycles - bank.accesses
        if idle < 0:
            raise EnergyModelError("L2 bank busier than the kernel window")
        l2 += (model.l2_bank.leakage * cycles
               + model.l2_bank.read * bank.reads
               + model.l2_bank.write * bank.writes
               + model.l2_bank.idle * idle)

    icache = (model.icache.leakage * cycles
              + model.icache.use * counters.icache_fetches
              + model.icache.refill * counters.icache_refills)

    dma_idle = cycles - counters.dma_transfers  # one word per busy cycle
    if dma_idle < 0:
        raise EnergyModelError("DMA busier than the kernel window")
    dma = (model.dma.leakage * cycles
           + model.dma.transfer * counters.dma_transfers
           + model.dma.idle * dma_idle)

    other = model.other.leakage * cycles + model.other.active * cycles

    return EnergyBreakdown(pe=pe, fpu=fpu, l1=l1, l2=l2, icache=icache,
                           dma=dma, other=other)
