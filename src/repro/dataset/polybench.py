"""Polybench suite ported to the kernel DSL (26 kernels).

Each builder transcribes the loop structure and access pattern of the
reference Polybench C kernel, parallelised the way the paper's OpenMP
port does: the outermost data-parallel loop becomes ``parallel for``,
sequential dependences (pivots, time steps, recurrences) become
:class:`SequentialFor` loops around the regions.  Array initialisation
is not part of the measured ``kernel()`` region and is omitted.

Simplifications are noted per kernel; they preserve the opcode mix and
the memory access pattern, which is what both the features and the
energy model observe.
"""

from __future__ import annotations

from repro.ir.builder import KernelBuilder
from repro.ir.expr import var
from repro.ir.nodes import Load, Loop, ParallelFor, Sequential, Store
from repro.ir.types import DType
from repro.dataset._sizing import matrix_side, cube_side, vector_len

SUITE = "polybench"


def _builder(name: str, dtype: DType, size: int) -> KernelBuilder:
    return KernelBuilder(name, dtype, size, suite=SUITE)


def gemm(dtype: DType, size: int):
    b = _builder("gemm", dtype, size)
    n = matrix_side(size, 3)
    A, B, C = (b.array(x, n * n) for x in "ABC")
    i, j, k = var("i"), var("j"), var("k")
    b.parallel_for("i", 0, n, [
        Loop("j", 0, n, [
            Load(C.name, i * n + j), b.op(1),        # beta * C[i][j]
            Loop("k", 0, n, [
                Load(A.name, i * n + k), Load(B.name, k * n + j),
                b.mul_add(),
            ]),
            Store(C.name, i * n + j),
        ]),
    ])
    return b.build()


def two_mm(dtype: DType, size: int):
    b = _builder("2mm", dtype, size)
    n = matrix_side(size, 5)
    A, B, C, D, T = (b.array(x, n * n) for x in ("A", "B", "C", "D", "T"))
    i, j, k = var("i"), var("j"), var("k")
    b.parallel_for("i", 0, n, [
        Loop("j", 0, n, [
            Loop("k", 0, n, [
                Load(A.name, i * n + k), Load(B.name, k * n + j),
                b.mul_add(),
            ]),
            Store(T.name, i * n + j),
        ]),
    ])
    b.parallel_for("i2", 0, n, [
        Loop("j2", 0, n, [
            Load(D.name, var("i2") * n + var("j2")), b.op(1),
            Loop("k2", 0, n, [
                Load(T.name, var("i2") * n + var("k2")),
                Load(C.name, var("k2") * n + var("j2")),
                b.mul_add(),
            ]),
            Store(D.name, var("i2") * n + var("j2")),
        ]),
    ])
    return b.build()


def three_mm(dtype: DType, size: int):
    b = _builder("3mm", dtype, size)
    n = matrix_side(size, 7)
    names = ("A", "B", "C", "D", "E", "F", "G")
    A, B, C, D, E, F, G = (b.array(x, n * n) for x in names)

    def mm(tag: str, x, y, out):
        i, j, k = var(f"i{tag}"), var(f"j{tag}"), var(f"k{tag}")
        b.parallel_for(f"i{tag}", 0, n, [
            Loop(f"j{tag}", 0, n, [
                Loop(f"k{tag}", 0, n, [
                    Load(x.name, i * n + k), Load(y.name, k * n + j),
                    b.mul_add(),
                ]),
                Store(out.name, i * n + j),
            ]),
        ])

    mm("a", A, B, E)
    mm("b", C, D, F)
    mm("c", E, F, G)
    return b.build()


def atax(dtype: DType, size: int):
    b = _builder("atax", dtype, size)
    n = matrix_side(size, 1, n_vectors=3)
    A = b.array("A", n * n)
    x, y, tmp = (b.array(s, n) for s in ("x", "y", "tmp"))
    i, j = var("i"), var("j")
    b.parallel_for("i", 0, n, [              # tmp = A x   (row access)
        Loop("j", 0, n, [
            Load(A.name, i * n + j), Load(x.name, j), b.mul_add(),
        ]),
        Store(tmp.name, i),
    ])
    b.parallel_for("i2", 0, n, [             # y = A^T tmp (column access)
        Loop("j2", 0, n, [
            Load(A.name, var("j2") * n + var("i2")),
            Load(tmp.name, var("j2")), b.mul_add(),
        ]),
        Store(y.name, var("i2")),
    ])
    return b.build()


def bicg(dtype: DType, size: int):
    b = _builder("bicg", dtype, size)
    n = matrix_side(size, 1, n_vectors=4)
    A = b.array("A", n * n)
    s, q, p, r = (b.array(x, n) for x in ("s", "q", "p", "r"))
    i, j = var("i"), var("j")
    b.parallel_for("i", 0, n, [              # q = A p
        Loop("j", 0, n, [
            Load(A.name, i * n + j), Load(p.name, j), b.mul_add(),
        ]),
        Store(q.name, i),
    ])
    b.parallel_for("j2", 0, n, [             # s = A^T r
        Loop("i2", 0, n, [
            Load(A.name, var("i2") * n + var("j2")),
            Load(r.name, var("i2")), b.mul_add(),
        ]),
        Store(s.name, var("j2")),
    ])
    return b.build()


def mvt(dtype: DType, size: int):
    b = _builder("mvt", dtype, size)
    n = matrix_side(size, 1, n_vectors=4)
    A = b.array("A", n * n)
    x1, x2, y1, y2 = (b.array(s, n) for s in ("x1", "x2", "y1", "y2"))
    i, j = var("i"), var("j")
    b.parallel_for("i", 0, n, [
        Load(x1.name, i),
        Loop("j", 0, n, [
            Load(A.name, i * n + j), Load(y1.name, j), b.mul_add(),
        ]),
        Store(x1.name, i),
    ])
    b.parallel_for("i2", 0, n, [
        Load(x2.name, var("i2")),
        Loop("j2", 0, n, [
            Load(A.name, var("j2") * n + var("i2")),
            Load(y2.name, var("j2")), b.mul_add(),
        ]),
        Store(x2.name, var("i2")),
    ])
    return b.build()


def gemver(dtype: DType, size: int):
    b = _builder("gemver", dtype, size)
    n = matrix_side(size, 1, n_vectors=8)
    A = b.array("A", n * n)
    vecs = ("u1", "v1", "u2", "v2", "wv", "xv", "yv", "zv")
    u1, v1, u2, v2, w, x, y, z = (b.array(s, n) for s in vecs)
    i, j = var("i"), var("j")
    b.parallel_for("i", 0, n, [              # A += u1 v1^T + u2 v2^T
        Load(u1.name, i), Load(u2.name, i),
        Loop("j", 0, n, [
            Load(A.name, i * n + j), Load(v1.name, j), b.mul_add(),
            Load(v2.name, j), b.mul_add(),
            Store(A.name, i * n + j),
        ]),
    ])
    b.parallel_for("i2", 0, n, [             # x = beta A^T y + z
        Loop("j2", 0, n, [
            Load(A.name, var("j2") * n + var("i2")),
            Load(y.name, var("j2")), b.mul_add(),
        ]),
        Load(z.name, var("i2")), b.op(1), Store(x.name, var("i2")),
    ])
    b.parallel_for("i3", 0, n, [             # w = alpha A x
        Loop("j3", 0, n, [
            Load(A.name, var("i3") * n + var("j3")),
            Load(x.name, var("j3")), b.mul_add(),
        ]),
        b.op(1), Store(w.name, var("i3")),
    ])
    return b.build()


def gesummv(dtype: DType, size: int):
    b = _builder("gesummv", dtype, size)
    n = matrix_side(size, 2, n_vectors=2)
    A, B = b.array("A", n * n), b.array("B", n * n)
    x, y = b.array("x", n), b.array("y", n)
    i, j = var("i"), var("j")
    b.parallel_for("i", 0, n, [
        Loop("j", 0, n, [
            Load(A.name, i * n + j), Load(x.name, j), b.mul_add(),
            Load(B.name, i * n + j), Load(x.name, j), b.mul_add(),
        ]),
        b.op(2),                              # alpha*tmp + beta*y
        Store(y.name, i),
    ])
    return b.build()


def syrk(dtype: DType, size: int):
    b = _builder("syrk", dtype, size)
    n = matrix_side(size, 2)
    A, C = b.array("A", n * n), b.array("C", n * n)
    i, j, k = var("i"), var("j"), var("k")
    b.parallel_for("i", 0, n, [              # lower triangle of C
        Loop("j", 0, i + 1, [
            Load(C.name, i * n + j), b.op(1),
            Loop("k", 0, n, [
                Load(A.name, i * n + k), Load(A.name, j * n + k),
                b.mul_add(),
            ]),
            Store(C.name, i * n + j),
        ]),
    ])
    return b.build()


def syr2k(dtype: DType, size: int):
    b = _builder("syr2k", dtype, size)
    n = matrix_side(size, 3)
    A, B, C = (b.array(x, n * n) for x in "ABC")
    i, j, k = var("i"), var("j"), var("k")
    b.parallel_for("i", 0, n, [
        Loop("j", 0, i + 1, [
            Load(C.name, i * n + j), b.op(1),
            Loop("k", 0, n, [
                Load(A.name, i * n + k), Load(B.name, j * n + k),
                b.mul_add(),
                Load(B.name, i * n + k), Load(A.name, j * n + k),
                b.mul_add(),
            ]),
            Store(C.name, i * n + j),
        ]),
    ])
    return b.build()


def trmm(dtype: DType, size: int):
    b = _builder("trmm", dtype, size)
    n = matrix_side(size, 2)
    A, B = b.array("A", n * n), b.array("B", n * n)
    i, j, k = var("i"), var("j"), var("k")
    b.parallel_for("i", 0, n, [
        Loop("j", 0, n, [
            Load(B.name, i * n + j),
            Loop("k", i + 1, n, [            # strictly-lower triangle
                Load(A.name, k * n + i), Load(B.name, k * n + j),
                b.mul_add(),
            ]),
            b.op(1), Store(B.name, i * n + j),
        ]),
    ])
    return b.build()


def symm(dtype: DType, size: int):
    b = _builder("symm", dtype, size)
    n = matrix_side(size, 3)
    A, B, C = (b.array(x, n * n) for x in "ABC")
    i, j, k = var("i"), var("j"), var("k")
    b.parallel_for("i", 0, n, [
        Loop("j", 0, n, [
            Loop("k", 0, i, [                # temp2 accumulation
                Load(A.name, i * n + k), Load(B.name, k * n + j),
                b.mul_add(),
            ]),
            Load(B.name, i * n + j), Load(A.name, i * n + i),
            b.mul_add(), b.op(1),
            Load(C.name, i * n + j), b.mul_add(),
            Store(C.name, i * n + j),
        ]),
    ])
    return b.build()


def doitgen(dtype: DType, size: int):
    b = _builder("doitgen", dtype, size)
    m = cube_side(size, 1)                   # A is m^3; C4 is m^2
    A = b.array("A", m * m * m)
    C4 = b.array("C4", m * m)
    S = b.array("S", m)
    r, q, p, s = var("r"), var("q"), var("p"), var("s")
    b.parallel_for("r", 0, m, [
        Loop("q", 0, m, [
            Loop("p", 0, m, [
                Loop("s", 0, m, [
                    Load(A.name, r * (m * m) + q * m + s),
                    Load(C4.name, s * m + p),
                    b.mul_add(),
                ]),
                Store(S.name, p),
            ]),
            Loop("p2", 0, m, [
                Load(S.name, var("p2")),
                Store(A.name, r * (m * m) + q * m + var("p2")),
            ]),
        ]),
    ])
    return b.build()


_TSTEPS = 4  # time steps for the stencil kernels


def jacobi_1d(dtype: DType, size: int):
    b = _builder("jacobi-1d", dtype, size)
    n = vector_len(size, 2)
    A, B = b.array("A", n), b.array("B", n)
    i = var("i")
    i2 = var("i2")
    sweep = ParallelFor("i", 1, n - 1, [
        Load(A.name, i - 1), Load(A.name, i), Load(A.name, i + 1),
        b.op(3), Store(B.name, i),
    ])
    copy_back = ParallelFor("i2", 1, n - 1, [
        Load(B.name, i2), Store(A.name, i2),
    ])
    b.sequential_for("t", 0, _TSTEPS, [sweep, copy_back])
    return b.build()


def jacobi_2d(dtype: DType, size: int):
    b = _builder("jacobi-2d", dtype, size)
    n = matrix_side(size, 2)
    A, B = b.array("A", n * n), b.array("B", n * n)
    i, j = var("i"), var("j")
    i2, j2 = var("i2"), var("j2")
    sweep = ParallelFor("i", 1, n - 1, [
        Loop("j", 1, n - 1, [
            Load(A.name, i * n + j), Load(A.name, i * n + j - 1),
            Load(A.name, i * n + j + 1), Load(A.name, (i - 1) * n + j),
            Load(A.name, (i + 1) * n + j), b.op(4),
            Store(B.name, i * n + j),
        ]),
    ])
    copy_back = ParallelFor("i2", 1, n - 1, [
        Loop("j2", 1, n - 1, [
            Load(B.name, i2 * n + j2), Store(A.name, i2 * n + j2),
        ]),
    ])
    b.sequential_for("t", 0, _TSTEPS, [sweep, copy_back])
    return b.build()


def seidel_2d(dtype: DType, size: int):
    # Gauss-Seidel has loop-carried dependences; the OpenMP port (like
    # the paper's) relaxes them and updates rows in parallel in place.
    b = _builder("seidel-2d", dtype, size)
    n = matrix_side(size, 1)
    A = b.array("A", n * n)
    i, j = var("i"), var("j")
    sweep = ParallelFor("i", 1, n - 1, [
        Loop("j", 1, n - 1, [
            Load(A.name, (i - 1) * n + j - 1), Load(A.name, (i - 1) * n + j),
            Load(A.name, (i - 1) * n + j + 1), Load(A.name, i * n + j - 1),
            Load(A.name, i * n + j), Load(A.name, i * n + j + 1),
            Load(A.name, (i + 1) * n + j - 1), Load(A.name, (i + 1) * n + j),
            Load(A.name, (i + 1) * n + j + 1),
            b.op(8), b.div(1),
            Store(A.name, i * n + j),
        ]),
    ])
    b.sequential_for("t", 0, _TSTEPS, [sweep])
    return b.build()


def fdtd_2d(dtype: DType, size: int):
    b = _builder("fdtd-2d", dtype, size)
    n = matrix_side(size, 3)
    ex, ey, hz = (b.array(x, n * n) for x in ("ex", "ey", "hz"))
    i, j = var("i"), var("j")
    i2, j2 = var("i2"), var("j2")
    i3, j3 = var("i3"), var("j3")
    upd_ey = ParallelFor("i", 1, n, [
        Loop("j", 0, n, [
            Load(ey.name, i * n + j), Load(hz.name, i * n + j),
            Load(hz.name, (i - 1) * n + j), b.op(2),
            Store(ey.name, i * n + j),
        ]),
    ])
    upd_ex = ParallelFor("i2", 0, n, [
        Loop("j2", 1, n, [
            Load(ex.name, i2 * n + j2), Load(hz.name, i2 * n + j2),
            Load(hz.name, i2 * n + j2 - 1), b.op(2),
            Store(ex.name, i2 * n + j2),
        ]),
    ])
    upd_hz = ParallelFor("i3", 0, n - 1, [
        Loop("j3", 0, n - 1, [
            Load(hz.name, i3 * n + j3),
            Load(ex.name, i3 * n + j3 + 1), Load(ex.name, i3 * n + j3),
            Load(ey.name, (i3 + 1) * n + j3), Load(ey.name, i3 * n + j3),
            b.op(4),
            Store(hz.name, i3 * n + j3),
        ]),
    ])
    b.sequential_for("t", 0, _TSTEPS, [upd_ey, upd_ex, upd_hz])
    return b.build()


def heat_3d(dtype: DType, size: int):
    b = _builder("heat-3d", dtype, size)
    m = cube_side(size, 2)
    A, B = b.array("A", m ** 3), b.array("B", m ** 3)
    i, j, k = var("i"), var("j"), var("k")
    m2 = m * m

    def stencil(src, dst, tag):
        ii, jj, kk = var(f"i{tag}"), var(f"j{tag}"), var(f"k{tag}")
        return ParallelFor(f"i{tag}", 1, m - 1, [
            Loop(f"j{tag}", 1, m - 1, [
                Loop(f"k{tag}", 1, m - 1, [
                    Load(src, ii * m2 + jj * m + kk),
                    Load(src, (ii - 1) * m2 + jj * m + kk),
                    Load(src, (ii + 1) * m2 + jj * m + kk),
                    Load(src, ii * m2 + (jj - 1) * m + kk),
                    Load(src, ii * m2 + (jj + 1) * m + kk),
                    Load(src, ii * m2 + jj * m + kk - 1),
                    Load(src, ii * m2 + jj * m + kk + 1),
                    b.op(6),
                    Store(dst, ii * m2 + jj * m + kk),
                ]),
            ]),
        ])

    b.sequential_for("t", 0, 2, [stencil(A.name, B.name, "a"),
                                 stencil(B.name, A.name, "b")])
    return b.build()


def adi(dtype: DType, size: int):
    b = _builder("adi", dtype, size)
    n = matrix_side(size, 3)
    u, v, p = (b.array(x, n * n) for x in ("u", "v", "p"))
    i, j = var("i"), var("j")
    i2, j2 = var("i2"), var("j2")
    col_sweep = ParallelFor("i", 1, n - 1, [   # implicit in y direction
        Loop("j", 1, n - 1, [
            Load(u.name, j * n + i), Load(p.name, i * n + j - 1),
            b.mul_add(), b.div(1),
            Store(p.name, i * n + j), Store(v.name, j * n + i),
        ]),
    ])
    row_sweep = ParallelFor("i2", 1, n - 1, [  # implicit in x direction
        Loop("j2", 1, n - 1, [
            Load(v.name, i2 * n + j2), Load(p.name, i2 * n + j2 - 1),
            b.mul_add(), b.div(1),
            Store(p.name, i2 * n + j2), Store(u.name, i2 * n + j2),
        ]),
    ])
    b.sequential_for("t", 0, 2, [col_sweep, row_sweep])
    return b.build()


def trisolv(dtype: DType, size: int):
    b = _builder("trisolv", dtype, size)
    n = matrix_side(size, 1, n_vectors=3)
    L = b.array("L", n * n)
    x, bb, r = (b.array(s, n) for s in ("x", "b", "r"))
    i, j = var("i"), var("j")
    partial = ParallelFor("j", 0, i, [        # dot(L[i,0:i], x[0:i])
        Load(L.name, i * n + j), Load(x.name, j), b.mul_add(),
        Store(r.name, j),
    ])
    update = Sequential([
        Load(bb.name, i), Load(r.name, i), b.op(1),
        Load(L.name, i * n + i), b.div(1), Store(x.name, i),
    ])
    b.sequential_for("i", 1, n, [partial, update])
    return b.build()


def durbin(dtype: DType, size: int):
    b = _builder("durbin", dtype, size)
    n = vector_len(size, 3)
    n = min(n, 96)  # the recurrence opens O(n) regions; keep it bounded
    r, y, z = (b.array(s, n) for s in ("r", "y", "z"))
    k, i = var("k"), var("i")
    sweep = ParallelFor("i", 0, k, [
        Load(r.name, k - i - 1 + 1), Load(y.name, i), b.mul_add(),
        Store(z.name, i),
    ])
    scalar = Sequential([
        Load(r.name, k), b.op(2), b.div(1), Store(y.name, k),
    ])
    b.sequential_for("k", 1, n, [sweep, scalar])
    return b.build()


def cholesky(dtype: DType, size: int):
    b = _builder("cholesky", dtype, size)
    n = matrix_side(size, 1)
    A = b.array("A", n * n)
    j, i, k = var("j"), var("i"), var("k")
    pivot = Sequential([
        Load(A.name, j * n + j), b.op(1), b.div(2),  # sqrt via Newton steps
        Store(A.name, j * n + j),
    ])
    eliminate = ParallelFor("i", j + 1, n, [
        Load(A.name, i * n + j),
        Loop("k", 0, j, [
            Load(A.name, i * n + k), Load(A.name, j * n + k), b.mul_add(),
        ]),
        Load(A.name, j * n + j), b.div(1),
        Store(A.name, i * n + j),
    ])
    b.sequential_for("j", 0, n, [pivot, eliminate])
    return b.build()


def lu(dtype: DType, size: int):
    b = _builder("lu", dtype, size)
    n = matrix_side(size, 1)
    A = b.array("A", n * n)
    k, i, j = var("k"), var("i"), var("j")
    scale_col = ParallelFor("i", k + 1, n, [
        Load(A.name, i * n + k), Load(A.name, k * n + k), b.div(1),
        Store(A.name, i * n + k),
    ])
    update = ParallelFor("i2", k + 1, n, [
        Load(A.name, var("i2") * n + k),
        Loop("j", k + 1, n, [
            Load(A.name, var("i2") * n + j), Load(A.name, k * n + j),
            b.mul_add(), Store(A.name, var("i2") * n + j),
        ]),
    ])
    b.sequential_for("k", 0, n - 1, [scale_col, update])
    return b.build()


def gramschmidt(dtype: DType, size: int):
    b = _builder("gramschmidt", dtype, size)
    n = matrix_side(size, 2)
    A, R = b.array("A", n * n), b.array("R", n * n)
    k, i, j = var("k"), var("i"), var("j")
    norm = Sequential([                       # nrm = ||A[:,k]||, serial
        Loop("i0", 0, n, [
            Load(A.name, var("i0") * n + k), b.mul_add(),
        ]),
        b.div(2), Store(R.name, k * n + k),   # sqrt approximation
    ])
    orthogonalize = ParallelFor("j", k + 1, n, [
        Loop("i", 0, n, [
            Load(A.name, i * n + k), Load(A.name, i * n + j), b.mul_add(),
        ]),
        Store(R.name, k * n + j),
        Loop("i2", 0, n, [
            Load(A.name, var("i2") * n + j), Load(A.name, var("i2") * n + k),
            b.mul_add(), Store(A.name, var("i2") * n + j),
        ]),
    ])
    b.sequential_for("k", 0, n - 1, [norm, orthogonalize])
    return b.build()


def covariance(dtype: DType, size: int):
    b = _builder("covariance", dtype, size)
    n = matrix_side(size, 2, n_vectors=1)
    data, cov = b.array("data", n * n), b.array("cov", n * n)
    mean = b.array("mean", n)
    j, i, k = var("j"), var("i"), var("k")
    b.parallel_for("j", 0, n, [               # column means (stride-n)
        Loop("i", 0, n, [
            Load(data.name, i * n + j), b.op(1),
        ]),
        b.div(1), Store(mean.name, j),
    ])
    b.parallel_for("i2", 0, n, [              # upper-triangular covariance
        Loop("j2", var("i2"), n, [
            Loop("k2", 0, n, [
                Load(data.name, var("k2") * n + var("i2")),
                Load(data.name, var("k2") * n + var("j2")),
                b.mul_add(),
            ]),
            b.div(1),
            Store(cov.name, var("i2") * n + var("j2")),
            Store(cov.name, var("j2") * n + var("i2")),
        ]),
    ])
    return b.build()


def correlation(dtype: DType, size: int):
    b = _builder("correlation", dtype, size)
    n = matrix_side(size, 2, n_vectors=2)
    data, corr = b.array("data", n * n), b.array("corr", n * n)
    mean, stddev = b.array("mean", n), b.array("stddev", n)
    j, i = var("j"), var("i")
    b.parallel_for("j", 0, n, [               # means + stddevs per column
        Loop("i", 0, n, [
            Load(data.name, i * n + j), b.op(1),
        ]),
        b.div(1), Store(mean.name, j),
        Loop("i1", 0, n, [
            Load(data.name, var("i1") * n + j), Load(mean.name, j),
            b.mul_add(),
        ]),
        b.div(2), Store(stddev.name, j),      # sqrt approximation
    ])
    b.parallel_for("i2", 0, n, [              # normalise data
        Loop("j2", 0, n, [
            Load(data.name, var("i2") * n + var("j2")),
            Load(mean.name, var("j2")), b.op(1),
            Load(stddev.name, var("j2")), b.div(1),
            Store(data.name, var("i2") * n + var("j2")),
        ]),
    ])
    b.parallel_for("i3", 0, n, [              # correlation matrix
        Loop("j3", var("i3"), n, [
            Loop("k3", 0, n, [
                Load(data.name, var("k3") * n + var("i3")),
                Load(data.name, var("k3") * n + var("j3")),
                b.mul_add(),
            ]),
            Store(corr.name, var("i3") * n + var("j3")),
        ]),
    ])
    return b.build()


#: kernel name -> builder, in a stable order.
POLYBENCH_KERNELS = {
    "gemm": gemm,
    "2mm": two_mm,
    "3mm": three_mm,
    "atax": atax,
    "bicg": bicg,
    "mvt": mvt,
    "gemver": gemver,
    "gesummv": gesummv,
    "syrk": syrk,
    "syr2k": syr2k,
    "trmm": trmm,
    "symm": symm,
    "doitgen": doitgen,
    "jacobi-1d": jacobi_1d,
    "jacobi-2d": jacobi_2d,
    "seidel-2d": seidel_2d,
    "fdtd-2d": fdtd_2d,
    "heat-3d": heat_3d,
    "adi": adi,
    "trisolv": trisolv,
    "durbin": durbin,
    "cholesky": cholesky,
    "lu": lu,
    "gramschmidt": gramschmidt,
    "covariance": covariance,
    "correlation": correlation,
}
