"""Classify an unseen kernel: the paper's intended use case.

Run with::

    python examples/classify_unseen_kernel.py [--profile quick]

Trains the decision tree on the full labelled dataset using only static
(compile-time) features, then predicts the minimum-energy core count of
a kernel that is NOT part of the dataset (the ``stencil_sync`` demo
kernel), and verifies the prediction against the simulated ground truth
— including how much energy the prediction would waste if wrong.
"""

import argparse

from repro.dataset.custom import stencil_sync
from repro.experiments.optsets import optimised_set
from repro.experiments.runner import load_dataset
from repro.features import extract_agg, extract_mca, extract_raw
from repro.features.sets import feature_names, sample_vector
from repro.ir.types import DType
from repro.ml import DecisionTreeClassifier
from repro.sim.results import minimum_energy_label, sweep_cores


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--profile", default=None,
                        help="dataset profile (default: $REPRO_PROFILE "
                             "or 'paper')")
    args = parser.parse_args()

    print("loading the labelled dataset (may simulate on a cold cache)...")
    dataset = load_dataset(args.profile)
    print(f"  {len(dataset)} samples, classes "
          f"{dataset.class_distribution()}")

    # --- train on importance-pruned static features -----------------------
    base = feature_names("static-all")
    kept = optimised_set(dataset, base, repeats=3)
    print(f"\nstatic-opt features ({len(kept)}): {', '.join(kept)}")
    X = dataset.matrix(kept)
    model = DecisionTreeClassifier(random_state=0).fit(X, dataset.labels)

    # --- an unseen kernel ---------------------------------------------------
    kernel = stencil_sync(DType.FP32, 4096)
    static = {**extract_raw(kernel), **extract_agg(kernel),
              **extract_mca(kernel)}
    vector = [sample_vector(static, {}, kept)]
    predicted = int(model.predict(vector)[0])

    results = sweep_cores(kernel)
    true_label = minimum_energy_label(results)
    energies = {r.team_size: r.total_energy_fj for r in results}
    waste = 100.0 * (energies[predicted] / energies[true_label] - 1.0)

    print(f"\nunseen kernel: {kernel.name} (fp32, 4096 B)")
    print(f"  predicted minimum-energy cores: {predicted}")
    print(f"  simulated ground truth:         {true_label}")
    print(f"  energy wasted by prediction:    {waste:.2f}%")
    verdict = ("exact" if predicted == true_label else
               "acceptable" if waste <= 5.0 else "poor")
    print(f"  verdict at the paper's 5% tolerance: {verdict}")


if __name__ == "__main__":
    main()
