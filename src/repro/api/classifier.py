"""The :class:`Classifier` facade: train / save / load / predict.

This is the product the paper describes — a classifier mapping source
code to the minimum-energy core configuration — packaged as a persistent
service instead of a one-shot experiment:

* :meth:`Classifier.train` fits the configured model family on a
  labelled dataset (building one from the configured profile when none
  is given);
* :meth:`Classifier.predict` scores a kernel IR, a feature mapping or a
  plain feature vector; :meth:`Classifier.predict_batch` scores many
  rows in one vectorized pass;
* :meth:`Classifier.save` / :meth:`Classifier.load` serialize the
  fitted model to a JSON artifact (flattened node arrays, feature
  names, ``CODE_VERSION``) so a model trains once and serves forever;
* :meth:`Classifier.evaluate` (and the module-level
  :func:`evaluate_features`) run the paper's repeated stratified-CV
  protocol and return the energy-tolerance accuracy curve — the
  experiment drivers in :mod:`repro.experiments` are thin clients of
  this entry point.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.api.config import DEFAULT_TOLERANCES, ReproConfig
from repro.api.registry import (
    available_feature_sets,
    model_family,
    resolve_feature_set,
)
from repro.dataset.build import Dataset, build_dataset
from repro.errors import ConfigError, MLError
from repro.features.dynamic import extract_dynamic, flatten_dynamic
from repro.features.mca import extract_mca
from repro.features.sets import sample_vector
from repro.features.static_agg import agg_from_raw
from repro.features.static_raw import extract_raw
from repro.ir.nodes import Kernel
from repro.ml.metrics import mean_tolerance_curve
from repro.ml.model_selection import repeated_cv_predict
from repro.ml.tree import DecisionTreeClassifier
from repro.platform.config import ClusterConfig
from repro.sim.engine import simulate
from repro.version import CODE_VERSION, __version__

ARTIFACT_FORMAT = "repro-classifier"
ARTIFACT_VERSION = 1

#: execution backends (see :meth:`Classifier.compile`).  ``reference``
#: predicts through the fitted model object itself; ``compiled``
#: predicts through a flat decision-table engine
#: (:mod:`repro.ml.compiled`) with byte-identical results.
BACKEND_REFERENCE = "reference"
BACKEND_COMPILED = "compiled"
BACKENDS = (BACKEND_COMPILED, BACKEND_REFERENCE)


@dataclass
class EvaluationReport:
    """Repeated-CV evaluation of one feature set / model pairing."""

    feature_names: list
    tolerances: tuple
    curve: list                                  # accuracy per tolerance
    importances: np.ndarray
    predictions: np.ndarray                      # (repeats, n_samples)

    def accuracy_at(self, tolerance) -> float:
        return self.curve[self.tolerances.index(tolerance)]


def evaluate_features(dataset: Dataset, feature_names: list,
                      model_factory=None, tolerances=DEFAULT_TOLERANCES,
                      n_splits: int = 10, repeats: int = 10,
                      seed: int = 0, trains: bool = True,
                      ) -> EvaluationReport:
    """The paper's evaluation protocol over an explicit feature list.

    With the default *model_factory* this fits the paper's decision
    tree under repeated stratified CV; *trains=False* (constant
    baselines) skips CV and scores a single whole-dataset prediction
    pass, since the predictions cannot depend on the training split.
    """
    if model_factory is None:
        model_factory = lambda: DecisionTreeClassifier(  # noqa: E731
            random_state=seed)
    X = dataset.matrix(list(feature_names))
    y = dataset.labels
    if trains:
        preds, importances = repeated_cv_predict(
            model_factory, X, y, n_splits=n_splits, repeats=repeats,
            seed=seed)
    else:
        model = model_factory().fit(X, y)
        preds = model.predict(X)
        importances = np.zeros(X.shape[1])
    curve = mean_tolerance_curve(preds, dataset.energy_matrix,
                                 tolerances, dataset.team_sizes)
    return EvaluationReport(feature_names=list(feature_names),
                            tolerances=tuple(tolerances), curve=curve,
                            importances=importances,
                            predictions=np.atleast_2d(preds))


def kernel_features(kernel: Kernel, feature_names: list,
                    cluster: ClusterConfig | None = None) -> list:
    """Extract the named features from a kernel IR.

    Static features come from the compile-time extractors; dynamic
    (``metric@team``) features require simulating the kernel at every
    team size, which only happens when the name list asks for them.
    """
    raw = extract_raw(kernel)
    static = dict(raw)
    static.update(agg_from_raw(raw))
    static.update(extract_mca(kernel))
    dynamic: dict = {}
    if any(name not in static for name in feature_names):
        cluster = cluster or ClusterConfig()
        per_team = {
            team: extract_dynamic(simulate(kernel, team, cluster))
            for team in range(1, cluster.n_cores + 1)
        }
        dynamic = flatten_dynamic(per_team)
    return sample_vector(static, dynamic, list(feature_names))


class Classifier:
    """Facade over the model/feature registries and the CV protocol."""

    def __init__(self, config: ReproConfig | None = None) -> None:
        self.config = config or ReproConfig()
        self.model_ = None
        self.feature_names_: list | None = None
        self.classes_: list | None = None
        self.trained_profile_: str | None = None
        self.n_training_samples_: int | None = None
        self._compiled = None  # flat-table engine (compile())
        self.backend_ = BACKEND_REFERENCE

    # -- training ----------------------------------------------------------------

    def train(self, dataset: Dataset | None = None,
              progress=None) -> "Classifier":
        """Fit the configured model on *dataset* (built if omitted)."""
        cfg = self.config
        if dataset is None:
            dataset = build_dataset(cfg.profile, progress=progress,
                                    jobs=cfg.jobs)
        names = resolve_feature_set(cfg.feature_set, dataset=dataset,
                                    n_splits=cfg.n_splits, seed=cfg.seed)
        family = model_family(cfg.model)
        model = family.factory(seed=cfg.seed, **cfg.model_params)
        model.fit(dataset.matrix(names), dataset.labels)
        self.model_ = model
        self.feature_names_ = list(names)
        self.classes_ = [int(c) for c in np.unique(dataset.labels)]
        self.trained_profile_ = dataset.profile
        self.n_training_samples_ = len(dataset)
        self._compiled = None  # training stays on the reference path
        self.backend_ = BACKEND_REFERENCE
        return self

    @property
    def is_fitted(self) -> bool:
        return self.model_ is not None

    def _require_fitted(self) -> None:
        if self.model_ is None:
            raise MLError("classifier is not trained; call train() or "
                          "Classifier.load() first")

    # -- prediction --------------------------------------------------------------

    def _vectorize(self, item) -> list:
        names = self.feature_names_
        if isinstance(item, Kernel):
            return kernel_features(item, names)
        if isinstance(item, Mapping):
            missing = [n for n in names if n not in item]
            if missing:
                raise MLError(f"feature mapping is missing "
                              f"{len(missing)} feature(s): "
                              f"{', '.join(missing[:5])}")
            return [float(item[n]) for n in names]
        vector = np.asarray(item, dtype=np.float64)
        if vector.shape != (len(names),):
            raise MLError(f"feature vector must have shape "
                          f"({len(names)},), got {vector.shape}")
        return [float(v) for v in vector]

    def _as_matrix(self, rows) -> np.ndarray:
        names = self.feature_names_
        if isinstance(rows, np.ndarray) and rows.ndim == 2:
            X = np.asarray(rows, dtype=np.float64)
        else:
            rows = list(rows)
            if rows and isinstance(rows[0], (Mapping, Kernel)):
                X = np.asarray([self._vectorize(r) for r in rows],
                               dtype=np.float64)
            else:
                X = np.asarray(rows, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(names):
            raise MLError(f"rows must form a (n, {len(names)}) matrix, "
                          f"got shape {X.shape}")
        return X

    def compile(self, backend: str = BACKEND_COMPILED) -> "Classifier":
        """Select the execution backend for prediction.

        ``compiled`` flattens the fitted model once into contiguous
        decision tables (:mod:`repro.ml.compiled`) so prediction is
        pure vectorized index-chasing with zero per-node Python
        objects; predictions are byte-identical to the reference.
        Families without a compiled form (the constant baselines)
        silently keep the reference path.  ``reference`` reverts to
        predicting through the model object.  Returns ``self``.
        """
        self._require_fitted()
        if backend == BACKEND_REFERENCE:
            self._compiled = None
            self.backend_ = BACKEND_REFERENCE
            return self
        if backend != BACKEND_COMPILED:
            raise MLError(f"unknown backend {backend!r}; "
                          f"available: {list(BACKENDS)}")
        compiler = model_family(self.config.model).compile
        if compiler is None:
            self._compiled = None
            self.backend_ = BACKEND_REFERENCE
        else:
            self._compiled = compiler(self.model_)
            self.backend_ = BACKEND_COMPILED
        return self

    @property
    def _engine(self):
        """The active prediction engine (compiled table or model)."""
        return self._compiled if self._compiled is not None else self.model_

    def predict(self, item) -> int:
        """Minimum-energy team size for one kernel / mapping / vector."""
        self._require_fitted()
        X = np.asarray([self._vectorize(item)], dtype=np.float64)
        return int(self._engine.predict(X)[0])

    def predict_batch(self, rows) -> np.ndarray:
        """Vectorized predictions for many rows (matrix, dicts, kernels)."""
        self._require_fitted()
        if isinstance(rows, np.ndarray):
            if rows.size == 0:
                return np.empty(0, dtype=int)
        else:
            rows = list(rows)
            if not rows:
                return np.empty(0, dtype=int)
        X = self._as_matrix(rows)
        return np.asarray(self._engine.predict(X), dtype=int)

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, dataset: Dataset | None = None,
                 tolerances=DEFAULT_TOLERANCES, n_splits: int | None = None,
                 repeats: int | None = None, seed: int | None = None,
                 feature_names: list | None = None) -> EvaluationReport:
        """Run the repeated-CV protocol for this classifier's config.

        An explicit *feature_names* list overrides the configured set
        (the experiment drivers use this for the pruned ``*-opt``
        series they derive themselves).
        """
        cfg = self.config
        if dataset is None:
            dataset = build_dataset(cfg.profile, jobs=cfg.jobs)
        n_splits = cfg.n_splits if n_splits is None else n_splits
        repeats = cfg.resolved_repeats() if repeats is None else repeats
        seed = cfg.seed if seed is None else seed
        family = model_family(cfg.model)
        if feature_names is None:
            feature_names = (self.feature_names_
                             if self.feature_names_ is not None else
                             resolve_feature_set(cfg.feature_set, dataset,
                                                 n_splits=n_splits,
                                                 seed=seed))
        factory = lambda: family.factory(  # noqa: E731
            seed=seed, **cfg.model_params)
        return evaluate_features(dataset, feature_names,
                                 model_factory=factory,
                                 tolerances=tolerances, n_splits=n_splits,
                                 repeats=repeats, seed=seed,
                                 trains=family.trains)

    # -- persistence -------------------------------------------------------------

    def info(self) -> dict:
        """JSON-safe summary of the fitted classifier."""
        self._require_fitted()
        return {
            "model_family": self.config.model,
            "feature_set": self.config.feature_set,
            "n_features": len(self.feature_names_),
            "feature_names": list(self.feature_names_),
            "classes": list(self.classes_ or []),
            "trained_profile": self.trained_profile_,
            "n_training_samples": self.n_training_samples_,
            "code_version": CODE_VERSION,
            "repro_version": __version__,
        }

    def save(self, path: str) -> None:
        """Atomically write the JSON model artifact."""
        self._require_fitted()
        family = model_family(self.config.model)
        payload = {
            "format": ARTIFACT_FORMAT,
            "format_version": ARTIFACT_VERSION,
            "code_version": CODE_VERSION,
            "repro_version": __version__,
            "model_family": self.config.model,
            "feature_set": self.config.feature_set,
            "feature_names": list(self.feature_names_),
            "classes": list(self.classes_ or []),
            "trained_profile": self.trained_profile_,
            "n_training_samples": self.n_training_samples_,
            "config": self.config.as_dict(),
            "model": family.to_payload(self.model_),
        }
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(os.path.abspath(path)) or ".",
            prefix=os.path.basename(path) + ".", suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load(cls, path: str,
             allow_version_mismatch: bool = False,
             backend: str = BACKEND_COMPILED) -> "Classifier":
        """Rebuild a classifier from a :meth:`save` artifact.

        Artifacts written under a different ``CODE_VERSION`` (simulator
        semantics changed, so the training labels may no longer hold)
        or naming an unknown feature set / model family raise a clear
        :class:`MLError`.

        Loaded models serve; serving wants the fast path — so the
        model is compiled into flat decision tables here, once, unless
        ``backend="reference"`` opts out (see :meth:`compile`; the
        artifact itself never stores compiled state).
        """
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except OSError as exc:
            raise MLError(f"cannot read model artifact {path!r}: {exc}")
        except json.JSONDecodeError as exc:
            raise MLError(f"model artifact {path!r} is not valid JSON: "
                          f"{exc}")
        if not isinstance(payload, dict) or \
                payload.get("format") != ARTIFACT_FORMAT:
            raise MLError(f"{path!r} is not a repro classifier artifact "
                          f"(format != {ARTIFACT_FORMAT!r})")
        format_version = payload.get("format_version", 1)
        if not isinstance(format_version, int) or \
                format_version > ARTIFACT_VERSION:
            raise MLError(
                f"model artifact {path!r} uses artifact format version "
                f"{format_version!r}, but this build supports up to "
                f"{ARTIFACT_VERSION}; upgrade the library or retrain")
        artifact_code = payload.get("code_version")
        if artifact_code != CODE_VERSION and not allow_version_mismatch:
            raise MLError(
                f"model artifact {path!r} was trained under code "
                f"version {artifact_code} but this library is at "
                f"{CODE_VERSION}; retrain, or pass "
                f"allow_version_mismatch=True to load anyway")
        try:
            config = ReproConfig.from_dict(payload.get("config", {}))
        except (ConfigError, TypeError) as exc:
            raise MLError(f"model artifact {path!r} carries an invalid "
                          f"config: {exc}")
        family = model_family(payload.get("model_family", ""))
        # the registry is the contract: an artifact naming a feature set
        # this build does not know is not servable.
        set_name = payload.get("feature_set", "")
        if set_name not in available_feature_sets():
            raise MLError(f"model artifact {path!r} uses unknown "
                          f"feature set {set_name!r}; available: "
                          f"{available_feature_sets()}")
        try:
            model = family.from_payload(payload["model"])
            feature_names = list(payload["feature_names"])
        except KeyError as exc:
            raise MLError(f"model artifact {path!r} is missing field "
                          f"{exc}")
        n_features = getattr(model, "n_features_", None)
        if n_features is not None and n_features != len(feature_names):
            raise MLError(f"model artifact {path!r} is inconsistent: "
                          f"model expects {n_features} features, "
                          f"artifact lists {len(feature_names)}")
        clf = cls(config)
        clf.model_ = model
        clf.feature_names_ = feature_names
        clf.classes_ = [int(c) for c in payload.get("classes", [])]
        clf.trained_profile_ = payload.get("trained_profile")
        clf.n_training_samples_ = payload.get("n_training_samples")
        return clf.compile(backend)
