"""P1b — decision-tree performance: fit and predict latency.

Tracks the CART implementation's cost on the real dataset matrices.
"""

from repro.features.sets import feature_names
from repro.ml.tree import DecisionTreeClassifier


def test_tree_fit_static(dataset, benchmark):
    X = dataset.matrix(feature_names("static-all"))
    y = dataset.labels
    tree = benchmark(lambda: DecisionTreeClassifier(random_state=0)
                     .fit(X, y))
    assert tree.n_leaves() > 1


def test_tree_fit_dynamic(dataset, benchmark):
    X = dataset.matrix(feature_names("dynamic"))
    y = dataset.labels
    tree = benchmark(lambda: DecisionTreeClassifier(random_state=0)
                     .fit(X, y))
    assert tree.depth() >= 1


def test_tree_predict(dataset, benchmark):
    X = dataset.matrix(feature_names("static-all"))
    y = dataset.labels
    tree = DecisionTreeClassifier(random_state=0).fit(X, y)
    preds = benchmark(tree.predict, X)
    assert len(preds) == len(y)
