"""Model-family and feature-set registries for the service layer.

Two small plugin points keep :class:`repro.api.Classifier` open for
extension without touching its callers:

* **model families** — named constructors plus JSON codecs.  Shipped:
  ``tree`` (the paper's CART), ``forest`` (the bagged extension) and
  ``always-k`` (the naive baseline; ``trains=False`` because its
  predictions do not depend on the training data).
* **feature sets** — named resolvers from a set name to an ordered
  feature-name list.  The static sets of
  :data:`repro.features.sets.FEATURE_SETS` are pre-registered, plus the
  dataset-derived ``static-opt`` / ``dynamic-opt`` pruned sets.

New entries plug in via :func:`register_model_family` /
:func:`register_feature_set`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable

from repro.api.selection import optimised_set
from repro.errors import MLError
from repro.features.sets import FEATURE_SETS
from repro.ml.baselines import AlwaysKClassifier
from repro.ml.compiled import CompiledForest, CompiledTree
from repro.ml.forest import RandomForestClassifier
from repro.ml.tree import DecisionTreeClassifier


# -- model families ---------------------------------------------------------------


@dataclass(frozen=True)
class ModelFamily:
    """One pluggable classifier family.

    ``factory(seed, **params)`` builds an unfitted model;
    ``to_payload`` / ``from_payload`` convert a *fitted* model to and
    from a JSON-safe dict.  ``trains=False`` marks families whose
    predictions are independent of the training data (baselines), which
    evaluation exploits by skipping cross-validation.

    ``compile`` (optional) maps a *fitted* model to a flat
    decision-table inference engine (see :mod:`repro.ml.compiled`)
    with byte-identical predictions; families without one — the
    baselines, whose predict is already table-free — simply keep the
    reference path when a compiled backend is requested.
    """

    name: str
    factory: Callable
    to_payload: Callable
    from_payload: Callable
    trains: bool = True
    description: str = ""
    compile: Callable | None = None


_MODEL_FAMILIES: dict[str, ModelFamily] = {}


def register_model_family(family: ModelFamily,
                          override: bool = False) -> ModelFamily:
    if family.name in _MODEL_FAMILIES and not override:
        raise MLError(f"model family {family.name!r} is already "
                      f"registered (pass override=True to replace it)")
    _MODEL_FAMILIES[family.name] = family
    return family


def model_family(name: str) -> ModelFamily:
    try:
        return _MODEL_FAMILIES[name]
    except KeyError:
        raise MLError(f"unknown model family {name!r}; available: "
                      f"{available_model_families()}")


def available_model_families() -> list[str]:
    return sorted(_MODEL_FAMILIES)


def model_payload_bytes(family_name: str, model) -> int:
    """Approximate resident size of a fitted model, in bytes.

    Measured as the JSON payload length of the family's artifact codec
    — the same representation the artifact cache stores — so the
    serving fleet's memory budget (see
    :class:`repro.api.fleet.ModelPool`) accounts trees and forests on
    one consistent scale without a numpy-internals walk.
    """
    payload = model_family(family_name).to_payload(model)
    return len(json.dumps(payload, separators=(",", ":")))


register_model_family(ModelFamily(
    name="tree",
    factory=lambda seed=None, **params: DecisionTreeClassifier(
        random_state=seed, **params),
    to_payload=lambda model: model.to_dict(),
    from_payload=DecisionTreeClassifier.from_dict,
    description="CART decision tree (the paper's model)",
    compile=CompiledTree.from_model,
))

register_model_family(ModelFamily(
    name="forest",
    factory=lambda seed=None, **params: RandomForestClassifier(
        random_state=seed, **params),
    to_payload=lambda model: model.to_dict(),
    from_payload=RandomForestClassifier.from_dict,
    description="bagged CART forest (robustness extension)",
    compile=CompiledForest.from_model,
))

register_model_family(ModelFamily(
    name="always-k",
    factory=lambda seed=None, k=8: AlwaysKClassifier(k=k),
    to_payload=lambda model: model.to_dict(),
    from_payload=AlwaysKClassifier.from_dict,
    trains=False,
    description="constant-team baseline (always-8 by default)",
))


# -- feature sets -----------------------------------------------------------------

#: resolver signature: (dataset, n_splits, repeats, seed) -> list[str].
FeatureSetResolver = Callable[..., "list[str]"]

_FEATURE_RESOLVERS: dict[str, FeatureSetResolver] = {}


def register_feature_set(name: str, names=None, resolver=None,
                         override: bool = False) -> None:
    """Register a named feature set, either a fixed name list or a
    resolver callable deriving the list from a dataset."""
    if (names is None) == (resolver is None):
        raise MLError("pass exactly one of names= or resolver=")
    if name in _FEATURE_RESOLVERS and not override:
        raise MLError(f"feature set {name!r} is already registered "
                      f"(pass override=True to replace it)")
    if names is not None:
        fixed = tuple(names)
        resolver = lambda dataset=None, **kw: list(fixed)  # noqa: E731
    _FEATURE_RESOLVERS[name] = resolver


def resolve_feature_set(name: str, dataset=None, n_splits: int = 10,
                        repeats: int = 5, seed: int = 0) -> list[str]:
    """The ordered feature-name list behind a named set.

    Fixed sets ignore *dataset*; derived sets (``static-opt``,
    ``dynamic-opt``) need one and raise :class:`MLError` without it.
    """
    resolver = _FEATURE_RESOLVERS.get(name)
    if resolver is None:
        raise MLError(f"unknown feature set {name!r}; available: "
                      f"{available_feature_sets()}")
    return resolver(dataset=dataset, n_splits=n_splits, repeats=repeats,
                    seed=seed)


def available_feature_sets() -> list[str]:
    return sorted(_FEATURE_RESOLVERS)


def _opt_resolver(base_set: str, opt_name: str) -> FeatureSetResolver:
    def resolve(dataset=None, n_splits: int = 10, repeats: int = 5,
                seed: int = 0) -> list[str]:
        if dataset is None:
            raise MLError(f"feature set {opt_name!r} is derived by "
                          f"importance pruning and needs a dataset")
        return optimised_set(dataset, list(FEATURE_SETS[base_set]),
                             n_splits=n_splits, repeats=repeats, seed=seed)
    return resolve


for _name, _names in FEATURE_SETS.items():
    register_feature_set(_name, names=_names)
register_feature_set("static-opt", resolver=_opt_resolver("static-all",
                                                          "static-opt"))
register_feature_set("dynamic-opt", resolver=_opt_resolver("dynamic",
                                                           "dynamic-opt"))
