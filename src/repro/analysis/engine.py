"""The rule engine behind ``repro lint``.

The engine owns everything that is not rule logic: discovering and
parsing the target files once (every rule shares the same ASTs),
running the selected rules, applying ``# repro: noqa[...]`` waivers,
rendering human and JSON reports, and turning findings into an exit
code.  Rules (see :mod:`repro.analysis.rules`) receive a parsed
:class:`Project` and yield :class:`Finding` rows — they never touch the
filesystem themselves, which keeps them trivially testable on fixture
files.

Waivers are per line: a finding on a line whose source carries
``# repro: noqa[RPL003]`` (several codes comma-separated, or a bare
``# repro: noqa`` for all rules) is reported as *waived* and does not
fail the gate.  Waivers are deliberate exceptions, so they stay in the
report output instead of disappearing.
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import re
import sys
from dataclasses import dataclass, field

from repro.errors import AnalysisError

#: JSON report schema version (bumped on incompatible layout changes).
REPORT_VERSION = 1

#: matches one waiver comment; group 1 is the optional rule list.
_NOQA = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

#: the waiver value meaning "every rule on this line".
WAIVE_ALL = "*"


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source line."""

    path: str
    line: int
    rule: str
    message: str
    waived: bool = field(default=False, compare=False)

    def render(self) -> str:
        suffix = "  (waived)" if self.waived else ""
        return f"{self.path}:{self.line}: {self.rule} {self.message}{suffix}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "waived": self.waived,
        }


class SourceFile:
    """One parsed target file: source text, AST and waiver map."""

    def __init__(self, path: str, text: str) -> None:
        self.path = path
        self.text = text
        try:
            self.tree = ast.parse(text, filename=path)
        except SyntaxError as exc:
            raise AnalysisError(
                f"cannot parse {path!r}: {exc.msg} (line {exc.lineno})"
            )
        self.waivers = parse_waivers(text)

    def waives(self, rule: str, line: int) -> bool:
        codes = self.waivers.get(line)
        return codes is not None and (WAIVE_ALL in codes or rule in codes)


def parse_waivers(text: str) -> dict:
    """Map line number -> waived rule codes (or :data:`WAIVE_ALL`)."""
    waivers: dict = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _NOQA.search(line)
        if match is None:
            continue
        listed = match.group(1)
        if listed is None:
            waivers[lineno] = {WAIVE_ALL}
        else:
            codes = {code.strip().upper() for code in listed.split(",")}
            waivers[lineno] = {code for code in codes if code}
    return waivers


class Project:
    """The parsed file set one lint run analyzes.

    Rules are cross-file by design (a verb handled in one module must
    be sent from another), so they get the whole project, not one file
    at a time.  Paths are stored relative to *root* when given, so
    reports are stable across checkouts.
    """

    def __init__(self, files: list) -> None:
        self.files = list(files)

    @classmethod
    def load(cls, paths, root: str | None = None) -> "Project":
        filenames = collect_files(paths)
        if root is None:
            root = os.getcwd()
        files = []
        for filename in filenames:
            with open(filename, "r", encoding="utf-8") as handle:
                text = handle.read()
            rel = os.path.relpath(filename, root)
            # keep paths inside the tree relative (stable reports);
            # anything outside stays absolute rather than ../../-mangled
            shown = filename if rel.startswith(os.pardir) else rel
            files.append(SourceFile(shown, text))
        return cls(files)

    def file(self, path: str) -> SourceFile | None:
        for source in self.files:
            if source.path == path:
                return source
        return None

    def waives(self, finding: Finding) -> bool:
        source = self.file(finding.path)
        return source is not None and source.waives(finding.rule, finding.line)


def collect_files(paths) -> list:
    """Every ``.py`` file under *paths* (files kept, dirs walked)."""
    out: list = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
            continue
        if not os.path.isdir(path):
            raise AnalysisError(f"no such file or directory: {path!r}")
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    out.append(os.path.join(dirpath, filename))
    return out


def default_paths() -> list:
    """What ``repro lint`` scans when no paths are given: the repro
    package source itself (the distributed tree the rules target)."""
    import repro

    return [os.path.dirname(os.path.abspath(repro.__file__))]


@dataclass
class LintReport:
    """The outcome of one lint run."""

    findings: list
    rules: list
    files_scanned: int

    @property
    def unwaived(self) -> list:
        return [f for f in self.findings if not f.waived]

    @property
    def waived(self) -> list:
        return [f for f in self.findings if f.waived]

    @property
    def exit_code(self) -> int:
        return 1 if self.unwaived else 0

    def to_dict(self) -> dict:
        return {
            "version": REPORT_VERSION,
            "tool": "repro-lint",
            "rules": list(self.rules),
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "summary": {
                "total": len(self.findings),
                "waived": len(self.waived),
                "unwaived": len(self.unwaived),
            },
        }

    def render_text(self, show_waived: bool = False) -> str:
        lines = []
        for finding in self.findings:
            if finding.waived and not show_waived:
                continue
            lines.append(finding.render())
        n_unwaived = len(self.unwaived)
        n_waived = len(self.waived)
        summary = (
            f"repro lint: {self.files_scanned} file(s), "
            f"{len(self.rules)} rule(s), {n_unwaived} finding(s)"
        )
        if n_waived:
            summary += f" + {n_waived} waived"
        lines.append(summary)
        return "\n".join(lines)


def run_lint(
    paths=None,
    select=None,
    disable=None,
    root: str | None = None,
) -> LintReport:
    """Run the rule battery over *paths* and return the report.

    *select* limits the run to the named rule codes; *disable* drops
    codes from whatever *select* produced.  Unknown codes raise
    :class:`repro.errors.AnalysisError` — a gate that silently skips a
    misspelled rule is worse than no gate.
    """
    from repro.analysis.rules import RULES

    if paths is None:
        paths = default_paths()
    chosen = _pick_rules(RULES, select, disable)
    project = Project.load(paths, root=root)
    findings: list = []
    for rule in chosen:
        for finding in rule.check(project):
            if project.waives(finding):
                finding = Finding(
                    path=finding.path,
                    line=finding.line,
                    rule=finding.rule,
                    message=finding.message,
                    waived=True,
                )
            findings.append(finding)
    findings.sort()
    return LintReport(
        findings=findings,
        rules=[rule.code for rule in chosen],
        files_scanned=len(project.files),
    )


def _pick_rules(registry: dict, select, disable) -> list:
    def normalize(codes) -> list:
        if isinstance(codes, str):
            codes = codes.split(",")
        out = []
        for code in codes:
            code = code.strip().upper()
            if not code:
                continue
            if code not in registry:
                raise AnalysisError(
                    f"unknown rule {code!r}; available: "
                    f"{', '.join(sorted(registry))}"
                )
            out.append(code)
        return out

    picked = normalize(select) if select is not None else list(registry)
    dropped = set(normalize(disable)) if disable is not None else set()
    return [registry[code] for code in picked if code not in dropped]


def main(argv=None) -> int:
    """The ``repro lint`` / ``python -m repro.analysis`` entry point."""
    from repro.analysis.rules import RULES

    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="protocol- and concurrency-aware static analysis "
        "for the repro codebase (see repro.analysis)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to analyze (default: the repro "
        "package source)",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="RULE[,RULE...]",
        help="run only these rule codes",
    )
    parser.add_argument(
        "--disable",
        default=None,
        metavar="RULE[,RULE...]",
        help="skip these rule codes",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--show-waived",
        action="store_true",
        help="include waived findings in text output (JSON always "
        "carries them)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for code in sorted(RULES):
            rule = RULES[code]
            print(f"{code}  {rule.name}: {rule.rationale}")
        return 0

    try:
        report = run_lint(
            paths=args.paths or None,
            select=args.select,
            disable=args.disable,
        )
    except AnalysisError as exc:
        print(f"repro lint: error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render_text(show_waived=args.show_waived))
    return report.exit_code
