"""Property-based fuzzing of the whole pipeline.

Hypothesis generates random (small) kernels — arbitrary mixes of compute
ops, loads/stores with random affine indices, nested loops, critical
sections and DMA transfers — and every one must satisfy the system's
global invariants:

* the per-core cycle budget closes (issue + stall + cg == window);
* both lowering backends produce identical counters;
* the trace -> regex -> listeners pipeline reconstructs the counters;
* useful work (memory ops, arithmetic) is conserved across team sizes;
* energy accounting accepts the counters and is strictly positive.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.energy.accounting import compute_energy
from repro.energy.model import EnergyModel
from repro.ir import KernelBuilder, Load, Loop, Store
from repro.ir.nodes import Compute, Critical, DmaCopy, OpKind
from repro.ir.expr import Affine
from repro.ir.types import DType
from repro.sim.engine import simulate
from repro.trace import TraceWriter
from repro.trace.analyser import analyse_trace

_KINDS = (OpKind.ALU, OpKind.FP, OpKind.DIV, OpKind.FPDIV, OpKind.NOP,
          OpKind.JUMP)


@st.composite
def leaf_stmt(draw, loop_vars):
    choice = draw(st.integers(min_value=0, max_value=4))
    if choice == 0:
        kind = draw(st.sampled_from(_KINDS))
        return Compute(kind, draw(st.integers(min_value=1, max_value=6)))
    if choice in (1, 2):
        coefs = {
            name: draw(st.integers(min_value=0, max_value=5))
            for name in loop_vars
        }
        index = Affine(draw(st.integers(min_value=0, max_value=7)), coefs)
        array = draw(st.sampled_from(["A", "B"]))
        return (Load(array, index) if choice == 1
                else Store(array, index))
    if choice == 3:
        return DmaCopy(draw(st.integers(min_value=1, max_value=12)))
    inner = Compute(OpKind.ALU, draw(st.integers(min_value=1,
                                                 max_value=3)))
    return Critical([inner], name="fuzz_sec")


@st.composite
def bodies(draw, loop_vars, depth=0):
    n_stmts = draw(st.integers(min_value=1, max_value=3))
    stmts = [draw(leaf_stmt(loop_vars)) for _ in range(n_stmts)]
    if depth < 2 and draw(st.booleans()):
        inner_var = f"v{depth}"
        trip = draw(st.integers(min_value=0, max_value=4))
        inner = draw(bodies(loop_vars + (inner_var,), depth + 1))
        stmts.append(Loop(inner_var, 0, trip, inner))
    return stmts


@st.composite
def kernels(draw):
    dtype = draw(st.sampled_from([DType.INT32, DType.FP32]))
    builder = KernelBuilder("fuzz", dtype, 512)
    builder.array("A", 64)
    builder.array("B", 64)
    trip = draw(st.integers(min_value=1, max_value=12))
    builder.parallel_for("i", 0, trip, draw(bodies(("i",))))
    return builder.build()


class TestFuzzedKernels:
    @settings(max_examples=30, deadline=None)
    @given(kernel=kernels(), team=st.integers(min_value=1, max_value=8))
    def test_budget_and_energy_invariants(self, kernel, team):
        counters = simulate(kernel, team)
        counters.validate()
        breakdown = compute_energy(counters, EnergyModel.paper_table1())
        assert breakdown.total > 0

    @settings(max_examples=15, deadline=None)
    @given(kernel=kernels(), team=st.integers(min_value=1, max_value=8))
    def test_backend_equivalence(self, kernel, team):
        fast = simulate(kernel, team).as_dict()
        slow = simulate(kernel, team, backend="interp").as_dict()
        assert fast == slow

    @settings(max_examples=15, deadline=None)
    @given(kernel=kernels(), team=st.integers(min_value=1, max_value=8))
    def test_trace_reconstruction(self, kernel, team):
        writer = TraceWriter()
        engine = simulate(kernel, team, trace=writer)
        rebuilt = analyse_trace(writer.lines).to_counters()
        assert rebuilt.as_dict() == engine.as_dict()

    @settings(max_examples=10, deadline=None)
    @given(kernel=kernels())
    def test_work_conservation_across_teams(self, kernel):
        from repro.ir.nodes import walk_body

        has_critical = any(
            isinstance(stmt, Critical)
            for region in kernel.parallel_regions()
            for stmt in walk_body(region.body))
        references = None
        for team in (1, 4, 8):
            counters = simulate(kernel, team)
            work = (
                # contended locks spin and issue extra probe *reads*, so
                # reads are only team-invariant without critical sections
                counters.total_l1_reads if not has_critical else 0,
                counters.total_l1_writes,
                sum(c.fp_ops + c.fpdiv_ops for c in counters.cores),
                sum(c.div_ops for c in counters.cores),
                counters.dma_transfers,
            )
            if references is None:
                references = work
            else:
                assert work == references
