"""Serve a fleet of model variants from one daemon, route per request.

Run with::

    python examples/fleet_scoring.py

This is the multi-model deployment shape of :mod:`repro.api.fleet`:
train several model/feature-set variants once (all artifact-cached),
host them in one :class:`repro.api.ModelPool` behind a single
:class:`repro.api.ScoringDaemon`, and let each request pick its
accuracy/latency trade-off with the ``model`` field — the paper's
decision tree for the fast path, the forest extension when robustness
is worth the extra microseconds.  Admin verbs manage the resident set
over the wire, and concurrent single-row requests are transparently
coalesced into batched predictions by the daemon's event loop.
"""

from __future__ import annotations

import os
import shutil
import tempfile

from repro.api import (
    AdminClient,
    Classifier,
    MicroBatcher,
    ModelFleet,
    ModelPool,
    ReproConfig,
    ScoringClient,
    ScoringDaemon,
)
from repro.dataset.build import build_dataset
from repro.dataset.registry import get_kernel_spec
from repro.errors import ScoringError

TRAIN_KERNELS = ("gemm", "atax", "fir", "stream_triad")
VARIANTS = (
    ("tree", "static-all", {}),             # the paper's model
    ("tree", "static-agg", {}),             # coarser features
    ("forest", "static-agg", {"n_estimators": 10}),  # robustness
)


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="fleet_example_")
    try:
        # -- train the variants once -----------------------------------
        specs = [get_kernel_spec(name) for name in TRAIN_KERNELS]
        dataset = build_dataset(
            "unit", specs=specs,
            cache_dir=os.path.join(workdir, "sim_cache"))
        trained = {}
        for family, feature_set, params in VARIANTS:
            clf = Classifier(ReproConfig(
                profile="unit", model=family, feature_set=feature_set,
                model_params=params)).train(dataset)
            trained[f"{family}:{feature_set}:unit"] = clf
        default_spec = "tree:static-all:unit"

        # -- pool them behind one daemon -------------------------------
        pool = ModelPool(loader=lambda key: trained[key.spec],
                         default_tag="unit", max_models=8)
        fleet = ModelFleet(pool, MicroBatcher(max_batch=32),
                           default=trained.pop(default_spec))
        for spec in list(trained):
            pool.add(trained[spec], key=spec)

        socket_path = os.path.join(workdir, "repro.sock")
        with ScoringDaemon(fleet=fleet, socket_path=socket_path,
                           workers=4):
            with ScoringClient(socket_path=socket_path) as client:
                admin = AdminClient(client)
                listing = admin.list_models()
                print(f"fleet serves {len(listing)} models "
                      f"on {socket_path}:")
                for entry in listing:
                    marker = " (default)" if entry.default else ""
                    print(f"  {entry.model:<28}"
                          f"{entry.size_bytes:>8} B{marker}")

                print("\nkernel      default  tree:agg  forest:agg")
                for name in ("trisolv", "histogram", "jacobi-1d"):
                    row = [client.predict_kernel(name, size=1024)]
                    for spec in ("tree:static-agg",
                                 "forest:static-agg"):
                        row.append(client.predict_kernel(
                            name, size=1024, model=spec))
                    print(f"{name:<12}{row[0]:^7}{row[1]:^10}{row[2]:^10}")

                # -- admin: evict, then transparently reload -----------
                admin.evict_model("forest:static-agg")
                cores = client.predict_kernel("trisolv", size=1024,
                                              model="forest:static-agg")
                print(f"\nforest evicted and transparently reloaded "
                      f"on next use (trisolv -> {cores} cores)")

                try:
                    client.predict_kernel("gemm", model="svm:static-all")
                except ScoringError as exc:
                    print(f"unknown variant answers a typed frame: "
                          f"code={exc.code!r}")
        fleet.close()
        print("\ndaemon stopped cleanly; socket unlinked")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
