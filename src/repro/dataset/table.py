"""A small column-oriented table (no pandas offline).

Used by the dataset and the experiment reports for aligned ASCII output.
"""

from __future__ import annotations

from repro.errors import DatasetError


class ColumnTable:
    """Named columns of equal length with ASCII rendering."""

    def __init__(self, columns: list[str]) -> None:
        if len(set(columns)) != len(columns):
            raise DatasetError("duplicate column names")
        self.columns = list(columns)
        self._data: dict[str, list] = {name: [] for name in columns}

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise DatasetError(f"row has {len(values)} values, table has "
                               f"{len(self.columns)} columns")
        for name, value in zip(self.columns, values):
            self._data[name].append(value)

    def column(self, name: str) -> list:
        try:
            return list(self._data[name])
        except KeyError:
            raise DatasetError(f"no column {name!r}")

    def __len__(self) -> int:
        return len(self._data[self.columns[0]]) if self.columns else 0

    def render(self, float_fmt: str = "{:.3f}") -> str:
        def fmt(value) -> str:
            if isinstance(value, float):
                return float_fmt.format(value)
            return str(value)

        rows = [[fmt(self._data[c][r]) for c in self.columns]
                for r in range(len(self))]
        widths = [max(len(self.columns[i]),
                      max((len(row[i]) for row in rows), default=0))
                  for i in range(len(self.columns))]
        header = "  ".join(name.ljust(w)
                           for name, w in zip(self.columns, widths))
        sep = "-" * len(header)
        lines = [header, sep]
        for row in rows:
            lines.append("  ".join(cell.rjust(w)
                                   for cell, w in zip(row, widths)))
        return "\n".join(lines)
