"""Paper Table I as a dataclass tree.

All values are femtojoules.  Per-cycle entries (leakage, idle, CG,
``other.active``) integrate over cycles; per-event entries (ALU, read,
use, transfer, ...) integrate over event counts.

Ablation variants (:meth:`EnergyModel.zero_leakage`,
:meth:`EnergyModel.scaled`) support the sensitivity experiments in
``repro.experiments.ablation``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PeEnergy:
    """Processing element (RI5CY core) energies."""

    leakage: float = 182.0      # per cycle
    nop: float = 1212.0         # per active-wait cycle
    alu: float = 2558.0         # per ALU-class opcode
    fp: float = 2468.0          # per FP-class opcode (core-side cost)
    l1: float = 3242.0          # per TCDM access opcode
    l2: float = 1011.0          # per L2 access opcode (core-side cost)
    cg: float = 20.0            # per clock-gated cycle


@dataclass(frozen=True)
class FpuEnergy:
    """Shared floating-point unit energies."""

    leakage: float = 191.0      # per cycle
    operative: float = 299.0    # per FP op executed
    idle: float = 0.0           # per idle cycle


@dataclass(frozen=True)
class MemBankEnergy:
    """One scratchpad memory bank (TCDM or L2)."""

    leakage: float             # per cycle
    read: float                # per read
    write: float               # per write
    idle: float                # per idle cycle


@dataclass(frozen=True)
class IcacheEnergy:
    """Shared instruction cache."""

    leakage: float = 774.0      # per cycle
    use: float = 4492.0         # per fetch
    refill: float = 5932.0      # per line refill


@dataclass(frozen=True)
class DmaEnergy:
    """Cluster DMA engine."""

    leakage: float = 165.0      # per cycle
    transfer: float = 1750.0    # per word transferred
    idle: float = 46.0          # per idle cycle


@dataclass(frozen=True)
class OtherEnergy:
    """Unmodelled cluster circuitry (interconnect, event unit, ...)."""

    leakage: float = 655.0      # per cycle
    active: float = 2702.0      # per active cycle


@dataclass(frozen=True)
class EnergyModel:
    """Complete per-component model; defaults reproduce paper Table I."""

    pe: PeEnergy = PeEnergy()
    fpu: FpuEnergy = FpuEnergy()
    l1_bank: MemBankEnergy = MemBankEnergy(
        leakage=49.0, read=2543.0, write=2568.0, idle=64.0)
    l2_bank: MemBankEnergy = MemBankEnergy(
        leakage=105.0, read=2942.0, write=3480.0, idle=13.0)
    icache: IcacheEnergy = IcacheEnergy()
    dma: DmaEnergy = DmaEnergy()
    other: OtherEnergy = OtherEnergy()

    @staticmethod
    def paper_table1() -> "EnergyModel":
        """The model exactly as published (same as the defaults)."""
        return EnergyModel()

    # -- ablation variants ------------------------------------------------------

    def zero_leakage(self) -> "EnergyModel":
        """Variant with every per-cycle background cost removed."""
        return EnergyModel(
            pe=replace(self.pe, leakage=0.0, cg=0.0),
            fpu=replace(self.fpu, leakage=0.0, idle=0.0),
            l1_bank=replace(self.l1_bank, leakage=0.0, idle=0.0),
            l2_bank=replace(self.l2_bank, leakage=0.0, idle=0.0),
            icache=replace(self.icache, leakage=0.0),
            dma=replace(self.dma, leakage=0.0, idle=0.0),
            other=replace(self.other, leakage=0.0, active=0.0),
        )

    def scaled(self, leakage: float = 1.0, nop: float = 1.0) -> "EnergyModel":
        """Variant scaling background costs and/or active-wait cost."""
        def scale_bank(bank: MemBankEnergy) -> MemBankEnergy:
            return replace(bank, leakage=bank.leakage * leakage,
                           idle=bank.idle * leakage)

        return EnergyModel(
            pe=replace(self.pe, leakage=self.pe.leakage * leakage,
                       nop=self.pe.nop * nop),
            fpu=replace(self.fpu, leakage=self.fpu.leakage * leakage),
            l1_bank=scale_bank(self.l1_bank),
            l2_bank=scale_bank(self.l2_bank),
            icache=replace(self.icache,
                           leakage=self.icache.leakage * leakage),
            dma=replace(self.dma, leakage=self.dma.leakage * leakage,
                        idle=self.dma.idle * leakage),
            other=replace(self.other, leakage=self.other.leakage * leakage,
                          active=self.other.active * leakage),
        )

    def cache_key(self) -> str:
        """Stable fingerprint for on-disk result caching."""
        parts = []
        for group_name in ("pe", "fpu", "l1_bank", "l2_bank", "icache",
                           "dma", "other"):
            group = getattr(self, group_name)
            for field_name in sorted(group.__dataclass_fields__):
                parts.append(f"{group_name}.{field_name}="
                             f"{getattr(group, field_name):g}")
        return ";".join(parts)

    def as_rows(self) -> list[tuple[str, str, float]]:
        """Flatten to (component, operating region, fJ) rows like Table I."""
        rows: list[tuple[str, str, float]] = []
        groups = [
            ("Processing Element", self.pe),
            ("FPU", self.fpu),
            ("Memory Bank L1", self.l1_bank),
            ("Memory Bank L2", self.l2_bank),
            ("ICache", self.icache),
            ("DMA", self.dma),
            ("Other Cluster Components", self.other),
        ]
        for title, group in groups:
            for field_name in group.__dataclass_fields__:
                rows.append((title, field_name.upper() if field_name in
                             ("nop", "alu", "fp", "cg") else
                             field_name.capitalize(),
                             getattr(group, field_name)))
        return rows
