"""DMA tiling: the paper's future-work memory-hierarchy extension.

Run with::

    python examples/dma_tiling.py

The paper's conclusions announce: "we will model DMA transfers and
memory hierarchy".  This example exercises that extension: the same
L2-resident payload is processed (a) directly over the 15-cycle L2 port
(`l2_stream`) and (b) tile-by-tile through the cluster DMA into TCDM
(`dma_tiled_stream`).  The energy model's DMA rows (Table I: 1750 fJ per
transferred word, 46 fJ idle) finally earn their keep.
"""

from repro.dataset.custom import dma_tiled_stream
from repro.dataset.registry import get_kernel_spec
from repro.energy.report import format_breakdown
from repro.ir.types import DType
from repro.sim.results import sweep_cores

SIZE = 8192


def main() -> None:
    direct = get_kernel_spec("l2_stream").build(DType.INT32, SIZE)
    tiled = dma_tiled_stream(DType.INT32, SIZE)

    print(f"{'kernel':>18}  best  cycles@best  energy@best [nJ]")
    rows = {}
    for kernel in (direct, tiled):
        results = sweep_cores(kernel)
        best = min(results, key=lambda r: r.total_energy_fj)
        rows[kernel.name] = best
        print(f"{kernel.name:>18}  {best.team_size:>4}  "
              f"{best.cycles:>11}  {best.total_energy_fj / 1e6:>14.3f}")

    tiled_best = rows["dma_tiled_stream"]
    direct_best = rows["l2_stream"]
    ratio = direct_best.total_energy_fj / tiled_best.total_energy_fj
    print(f"\nDMA tiling vs direct L2 access: {ratio:.2f}x the energy "
          f"for the direct version")
    print(f"words moved by the DMA: "
          f"{tiled_best.counters.dma_transfers}")

    print()
    print(format_breakdown(tiled_best.energy,
                           f"(dma_tiled_stream @ "
                           f"{tiled_best.team_size} cores)"))


if __name__ == "__main__":
    main()
