"""Random forest on top of the CART tree (robustness extension).

The paper's model is a single decision tree; reference [7] of the paper
uses random forests for OpenMP energy prediction.  We ship a small
bagged-forest implementation both as an ablation (does bagging close the
static/dynamic gap?) and as a stress test of the tree implementation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import MLError
from repro.ml.tree import DecisionTreeClassifier


class RandomForestClassifier:
    """Bootstrap-aggregated CART trees with per-node feature sampling."""

    def __init__(self, n_estimators: int = 50,
                 max_depth: int | None = None,
                 min_samples_leaf: int = 1,
                 max_features: int | str | None = "sqrt",
                 random_state: int | None = None) -> None:
        if n_estimators < 1:
            raise MLError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.trees_: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray | None = None
        self.feature_importances_: np.ndarray | None = None

    def fit(self, X, y) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if len(X) != len(y) or len(X) == 0:
            raise MLError("X and y must be non-empty and aligned")
        rng = np.random.default_rng(self.random_state)
        self.classes_ = np.unique(y)
        self.trees_ = []
        importances = np.zeros(X.shape[1])
        for b in range(self.n_estimators):
            idx = rng.integers(0, len(X), size=len(X))
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                random_state=int(rng.integers(0, 2**31 - 1)))
            tree.fit(X[idx], y[idx])
            self.trees_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = (importances / total if total > 0
                                     else importances)
        return self

    def predict(self, X) -> np.ndarray:
        """Majority vote over the trees, fully vectorized.

        Each (batched) tree prediction is mapped to a forest-class
        index, and all votes are tallied in a single ``bincount`` over
        flattened (row, class) keys — no per-row Python loop.  Ties
        break toward the lowest class, matching the row-wise reference.
        """
        if not self.trees_:
            raise MLError("forest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        n, k = len(X), len(self.classes_)
        # tree.classes_ is a subset of self.classes_ (both come from the
        # same y), so searchsorted is an exact class -> index map.
        tree_votes = np.empty((len(self.trees_), n), dtype=np.intp)
        for t, tree in enumerate(self.trees_):
            tree_votes[t] = np.searchsorted(self.classes_, tree.predict(X))
        flat = tree_votes + np.arange(n, dtype=np.intp) * k
        votes = np.bincount(flat.ravel(), minlength=n * k).reshape(n, k)
        return self.classes_[votes.argmax(axis=1)]

    # -- serialization ----------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe payload: hyper-parameters plus every fitted tree."""
        if not self.trees_:
            raise MLError("forest is not fitted")
        return {
            "params": {
                "n_estimators": self.n_estimators,
                "max_depth": self.max_depth,
                "min_samples_leaf": self.min_samples_leaf,
                "max_features": self.max_features,
                "random_state": self.random_state,
            },
            "classes": self.classes_.tolist(),
            "feature_importances": self.feature_importances_.tolist(),
            "trees": [tree.to_dict() for tree in self.trees_],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RandomForestClassifier":
        """Rebuild a fitted forest from a :meth:`to_dict` payload."""
        try:
            forest = cls(**data["params"])
            forest.classes_ = np.asarray(data["classes"])
            forest.feature_importances_ = np.asarray(
                data["feature_importances"], dtype=np.float64)
            forest.trees_ = [DecisionTreeClassifier.from_dict(tree)
                             for tree in data["trees"]]
        except MLError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise MLError(f"malformed random-forest payload: {exc!r}")
        if not forest.trees_:
            raise MLError("forest payload has no trees")
        return forest

    def _predict_loop(self, X) -> np.ndarray:
        """Seed per-tree/per-row dict voting; kept as the equivalence
        and benchmark baseline for the vectorized ``predict``."""
        if not self.trees_:
            raise MLError("forest is not fitted")
        X = np.asarray(X, dtype=np.float64)
        votes = np.zeros((len(X), len(self.classes_)), dtype=int)
        class_index = {c: i for i, c in enumerate(self.classes_)}
        for tree in self.trees_:
            for i, pred in enumerate(tree._predict_rowwise(X)):
                votes[i, class_index[pred]] += 1
        return self.classes_[votes.argmax(axis=1)]
