"""E7 — the paper's headline scalar claims, computed from Figure 2.

* static features reach ~57% at 0% tolerance, static-opt ~61%;
* static-opt approaches ~80% at 5% tolerance and exceeds 85% at 8%;
* the static-vs-dynamic gap stays below 10 points;
* every learned model dominates the always-8 policy.

A thin client twice over: it reads everything off the Figure-2 result,
which itself is computed through :mod:`repro.api`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dataset.build import Dataset
from repro.experiments.figure2 import Figure2Result, run_figure2


@dataclass
class HeadlineResult:
    static_agg_at_0: float
    static_opt_at_0: float
    static_opt_at_5: float
    static_opt_at_8: float
    dynamic_at_0: float
    max_static_dynamic_gap: float
    learned_beats_always8: bool
    figure2: Figure2Result

    def render(self) -> str:
        return "\n".join([
            "Headline numbers (paper expectation in parentheses)",
            f"  static-agg accuracy @0% tol:  "
            f"{self.static_agg_at_0:6.1%}  (~57%)",
            f"  static-opt accuracy @0% tol:  "
            f"{self.static_opt_at_0:6.1%}  (~61%)",
            f"  static-opt accuracy @5% tol:  "
            f"{self.static_opt_at_5:6.1%}  (~79-80%)",
            f"  static-opt accuracy @8% tol:  "
            f"{self.static_opt_at_8:6.1%}  (>85%)",
            f"  dynamic accuracy    @0% tol:  "
            f"{self.dynamic_at_0:6.1%}",
            f"  max static-dynamic gap:       "
            f"{self.max_static_dynamic_gap:6.1%}  (<10%)",
            f"  learned models beat always-8: "
            f"{self.learned_beats_always8}  (True)",
        ])


def run_headline(dataset: Dataset, n_splits: int = 10,
                 repeats: int | None = None, seed: int = 0,
                 ) -> HeadlineResult:
    fig = run_figure2(dataset, "left", n_splits=n_splits, repeats=repeats,
                      seed=seed)
    gaps = [d - s for d, s in zip(fig.series["dynamic"],
                                  fig.series["static-opt"])]
    baseline = fig.series["always-8"]
    beats = all(
        fig.series[name][i] >= baseline[i]
        for name in ("static-agg", "static-opt", "dynamic", "dynamic-opt")
        for i in range(len(baseline))
    )
    return HeadlineResult(
        static_agg_at_0=fig.accuracy_at("static-agg", 0),
        static_opt_at_0=fig.accuracy_at("static-opt", 0),
        static_opt_at_5=fig.accuracy_at("static-opt", 5),
        static_opt_at_8=fig.accuracy_at("static-opt", 8),
        dynamic_at_0=fig.accuracy_at("dynamic", 0),
        max_static_dynamic_gap=max(gaps),
        learned_beats_always8=beats,
        figure2=fig,
    )
