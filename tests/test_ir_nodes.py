"""Unit tests for IR nodes, the builder and validation."""

import pytest

from repro.errors import IRError
from repro.ir import (
    Array,
    Compute,
    Critical,
    KernelBuilder,
    Load,
    Loop,
    OpKind,
    ParallelFor,
    Sequential,
    SequentialFor,
    validate_kernel,
)
from repro.ir.expr import var
from repro.ir.nodes import walk_body
from repro.ir.types import DType, parse_dtype


class TestTypes:
    def test_sizes(self):
        assert DType.INT32.size_bytes == 4
        assert DType.FP32.size_bytes == 4

    def test_float_flag(self):
        assert DType.FP32.is_float and not DType.INT32.is_float

    def test_parse(self):
        assert parse_dtype("FP32") is DType.FP32
        assert parse_dtype(" int32 ") is DType.INT32
        with pytest.raises(ValueError):
            parse_dtype("double")


class TestNodeInvariants:
    def test_array_rejects_bad_space(self):
        with pytest.raises(IRError):
            Array("A", 10, DType.INT32, space="l3")

    def test_array_rejects_zero_length(self):
        with pytest.raises(IRError):
            Array("A", 0, DType.INT32)

    def test_compute_rejects_zero_count(self):
        with pytest.raises(IRError):
            Compute(OpKind.ALU, 0)

    def test_loop_rejects_empty_body(self):
        with pytest.raises(IRError):
            Loop("i", 0, 4, [])

    def test_parallel_for_bounds_may_reference_seq_var(self):
        region = ParallelFor("j", 0, var("i"), [Compute(OpKind.ALU, 1)])
        assert region.upper.variables() == {"i"}

    def test_sequential_for_requires_constant_bounds(self):
        region = ParallelFor("j", 0, 4, [Compute(OpKind.ALU, 1)])
        with pytest.raises(IRError):
            SequentialFor("i", 0, var("n"), [region])

    def test_walk_body_visits_nested(self):
        body = (Loop("i", 0, 2, [Critical([Compute(OpKind.ALU, 1)])]),)
        kinds = [type(stmt).__name__ for stmt in walk_body(body)]
        assert kinds == ["Loop", "Critical", "Compute"]


class TestBuilder:
    def test_op_kind_follows_dtype(self):
        b_int = KernelBuilder("k", DType.INT32, 512)
        b_fp = KernelBuilder("k", DType.FP32, 512)
        assert b_int.op().kind is OpKind.ALU
        assert b_fp.op().kind is OpKind.FP
        assert b_int.div().kind is OpKind.DIV
        assert b_fp.div().kind is OpKind.FPDIV
        assert b_fp.int_op().kind is OpKind.ALU

    def test_sizing_helpers(self):
        b = KernelBuilder("k", DType.INT32, 4096)
        assert b.elements == 1024
        assert b.split_elements(2) == 512
        side = b.square_side(3)
        assert 3 * side * side <= 1024

    def test_build_validates(self):
        b = KernelBuilder("k", DType.INT32, 512)
        b.array("A", 8)
        b.parallel_for("i", 0, 8, [Load("BOGUS", var("i"))])
        with pytest.raises(IRError):
            b.build()

    def test_meta_includes_suite(self):
        b = KernelBuilder("k", DType.INT32, 512, suite="custom")
        b.array("A", 8)
        b.parallel_for("i", 0, 8, [Load("A", var("i"))])
        kernel = b.build(note="hello")
        assert kernel.meta["suite"] == "custom"
        assert kernel.meta["note"] == "hello"


class TestValidation:
    def _kernel(self, body):
        from repro.ir.nodes import Kernel
        return Kernel("k", DType.INT32, 512,
                      arrays=(Array("A", 64, DType.INT32),), body=body)

    def test_requires_parallel_region(self):
        kernel = self._kernel((Sequential((Compute(OpKind.ALU, 1),)),))
        with pytest.raises(IRError, match="no parallel region"):
            validate_kernel(kernel)

    def test_rejects_unbound_index_variable(self):
        kernel = self._kernel((
            ParallelFor("i", 0, 4, (Load("A", var("z")),)),
        ))
        with pytest.raises(IRError, match="unbound"):
            validate_kernel(kernel)

    def test_rejects_shadowed_loop_variable(self):
        kernel = self._kernel((
            ParallelFor("i", 0, 4, (
                Loop("i", 0, 2, (Compute(OpKind.ALU, 1),)),
            )),
        ))
        with pytest.raises(IRError, match="shadows"):
            validate_kernel(kernel)

    def test_rejects_nested_sequential_for(self):
        inner = SequentialFor("t", 0, 2, (
            ParallelFor("i", 0, 4, (Compute(OpKind.ALU, 1),)),
        ))
        kernel = self._kernel((SequentialFor("s", 0, 2, (inner,)),))
        with pytest.raises(IRError):
            validate_kernel(kernel)

    def test_accepts_triangular_regions(self):
        region = ParallelFor("j", 0, var("i"), (Load("A", var("j")),))
        kernel = self._kernel((SequentialFor("i", 1, 5, (region,)),))
        validate_kernel(kernel)  # no raise

    def test_rejects_parallel_bounds_with_unknown_vars(self):
        region = ParallelFor("j", 0, var("q"), (Load("A", var("j")),))
        kernel = self._kernel((SequentialFor("i", 1, 5, (region,)),))
        with pytest.raises(IRError, match="not bound"):
            validate_kernel(kernel)
