"""Self-healing shard supervision: respawn, drain, restart, hot swap.

:class:`ShardSupervisor` closes the gap between "the client routes
around corpses" and "the fleet heals": it owns a
:class:`repro.api.shard.ShardManager` operationally, health-checking
every shard on an interval and respawning the dead, and it composes
the drain protocol (see :data:`repro.api.protocol.ERROR_DRAINING`)
into fleet-level operations:

* **crash healing** — a shard whose process exited (or whose health
  probe keeps failing while the process lingers) is respawned and the
  shard registry refreshed, so clients re-resolve to the replacement
  on their next (re)connect;
* **graceful drain** — :meth:`drain_shard` deregisters one shard (no
  fresh connections), sends the ``drain`` verb (no fresh requests,
  in-flight work finishes) and waits for the process to exit;
* **rolling restart** — :meth:`rolling_restart` cycles the fleet one
  shard at a time (drain → respawn → healthy), so it never drops
  below N-1 serving shards;
* **zero-downtime model hot-swap** — :meth:`hot_swap` warm-loads a
  new model key into a canary shard's pool, scores a probe set
  against it via per-request model routing (the serving default stays
  untouched), then promotes the key fleet-wide and verifies the
  default route answers byte-identically everywhere.

Per-shard addressing needs unix-socket deployments (shard *i* listens
at ``<base>.<i>``); on sharded TCP (one ``SO_REUSEPORT`` port, the
kernel picks the shard) supervision degrades to process-liveness
healing and drain/hot-swap are unavailable.

Usage::

    manager = ShardManager(factory, shards=4, socket_path=base)
    with manager, ShardSupervisor(manager) as supervisor:
        ...                            # crashes now self-heal
        supervisor.rolling_restart()   # pick up a new artifact/config
        supervisor.hot_swap("forest:static-all", probe_rows)
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.api.admin import AdminClient
from repro.api.shard import ShardManager, shard_socket_path
from repro.errors import DaemonError, ScoringError
from repro.obs import MetricsRegistry, get_logger

__all__ = [
    "DEFAULT_INTERVAL",
    "DEFAULT_PROBE_FAILURES",
    "DEFAULT_PROBE_TIMEOUT",
    "HotSwapReport",
    "ShardSupervisor",
]

#: seconds between supervision passes.
DEFAULT_INTERVAL = 1.0
#: per-probe connect/answer budget, seconds.
DEFAULT_PROBE_TIMEOUT = 5.0
#: consecutive failed probes of a live process before it is replaced.
DEFAULT_PROBE_FAILURES = 3

#: bound on the retained event history.
_EVENT_LIMIT = 256


@dataclass(frozen=True)
class HotSwapReport:
    """What one :meth:`ShardSupervisor.hot_swap` did.

    ``predictions`` is the canary's probe-set scoring under the new
    model; ``shard_predictions[i]`` is what shard ``promoted[i]``
    answered on the *default* route after promotion.  ``identical``
    is the acceptance gate: every shard's default route reproduced
    the canary predictions exactly.
    """

    model: str
    canary_shard: int
    predictions: tuple
    promoted: tuple
    shard_predictions: tuple
    identical: bool


class ShardSupervisor:
    """Health-check, heal and operate a :class:`ShardManager` fleet.

    The supervision loop runs on a dedicated thread
    (:meth:`start` / :meth:`stop`, or the context manager); every
    *interval* seconds each shard is checked — process liveness first,
    then (unix deployments) a ``health`` probe over its socket — and
    dead or persistently unhealthy shards are respawned through the
    manager, refreshing the registry.  Manual operations
    (:meth:`drain_shard`, :meth:`rolling_restart`, :meth:`hot_swap`)
    exclude their shards from healing while they run, so the loop
    never fights an operator.

    *on_event* (optional) is called with one dict per supervision
    event (``{"event": "respawn", "shard": 2, "pid": ..., ...}``);
    the same events are kept on :attr:`events` (bounded history).
    """

    def __init__(
        self,
        manager: ShardManager,
        interval: float = DEFAULT_INTERVAL,
        probe_timeout: float = DEFAULT_PROBE_TIMEOUT,
        max_probe_failures: int = DEFAULT_PROBE_FAILURES,
        drain_timeout: float = 60.0,
        op_timeout: float = 60.0,
        on_event=None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if interval <= 0:
            raise DaemonError(f"interval must be > 0, got {interval}")
        if max_probe_failures < 1:
            raise DaemonError(
                f"max_probe_failures must be >= 1, got {max_probe_failures}")
        self.manager = manager
        self.interval = float(interval)
        self.probe_timeout = float(probe_timeout)
        self.max_probe_failures = int(max_probe_failures)
        self.drain_timeout = float(drain_timeout)
        self.op_timeout = float(op_timeout)
        self.on_event = on_event
        # supervision telemetry: event counters by kind plus the
        # health-probe round-trip distribution (see repro.obs)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._obs_probe_rtt = self.metrics.histogram(
            "repro_supervisor_probe_rtt_us"
        )
        self._log = get_logger("supervisor")
        # _lock guards the bookkeeping (exclusions, probe failures,
        # events); _ops serializes the process-level mutations (heal
        # vs drain vs restart) so two actors never respawn one shard
        self._lock = threading.Lock()
        self._ops = threading.Lock()
        self._excluded: set = set()
        self._failures: dict = {}
        self._events: list = []
        self._halt = threading.Event()
        self._thread: threading.Thread | None = None

    # -- the supervision loop ----------------------------------------------

    def start(self) -> "ShardSupervisor":
        if self._thread is not None and self._thread.is_alive():
            raise DaemonError("supervisor is already running")
        self._halt.clear()
        thread = threading.Thread(target=self._supervise,
                                  name="repro-supervise", daemon=True)
        self._thread = thread
        thread.start()
        return self

    def stop(self) -> None:
        self._halt.set()
        thread = self._thread
        if thread is not None:
            thread.join(self.interval + self.probe_timeout + 30.0)
            self._thread = None

    def __enter__(self) -> "ShardSupervisor":
        if self._thread is None or not self._thread.is_alive():
            self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def _supervise(self) -> None:
        # the dedicated supervision thread: never dies on a bad pass —
        # a supervisor that crashes on the failure it exists to handle
        # is worse than none
        while not self._halt.wait(self.interval):
            try:
                self.check_once()
            except Exception as exc:
                self._emit("error", None, error=str(exc))

    def check_once(self) -> list:
        """One supervision pass; returns the shard indexes healed.

        Dead processes are respawned immediately; live processes that
        fail their health probe ``max_probe_failures`` times in a row
        (wedged event loop, unreachable socket) are killed and
        respawned.  Shards under a manual operation are skipped.
        """
        healed: list = []
        for index in range(self.manager.shards):
            with self._lock:
                if index in self._excluded:
                    continue
            try:
                proc = self.manager.proc(index)
            except DaemonError:
                break  # the manager stopped under us
            try:
                if not proc.is_alive():
                    if self._heal(index, "exit") is not None:
                        healed.append(index)
                    continue
                if self.manager.socket_path is None:
                    continue  # TCP: the kernel hides shards from probes
                if self._probe(index):
                    self._note_probe(index, True)
                    continue
                if (self._note_probe(index, False)
                        >= self.max_probe_failures):
                    if self._heal(index, "probe") is not None:
                        healed.append(index)
            except DaemonError as exc:
                # a failed respawn must not stop the pass: the other
                # shards still deserve their checks, and the next pass
                # retries this one
                self._emit("error", index, error=str(exc))
        return healed

    def _heal(self, index: int, reason: str) -> int | None:
        """Replace shard *index*; ``None`` when healing was not needed."""
        with self._ops:
            with self._lock:
                if index in self._excluded:
                    return None  # an operator claimed it meanwhile
            proc = self.manager.proc(index)
            if proc.is_alive():
                if reason != "probe":
                    return None  # already healed while we waited
                # a live process that stopped answering: take it down
                # before handing the endpoint to a replacement
                proc.terminate()
                proc.join(5.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(5.0)
            pid = self.manager.respawn(index)
            with self._lock:
                self._failures.pop(index, None)
            self._emit("respawn", index, pid=pid, reason=reason)
            return pid

    def _probe(self, index: int) -> bool:
        path = shard_socket_path(self.manager.socket_path, index)
        probe_from = time.perf_counter_ns()
        try:
            with AdminClient(socket_path=path, timeout=self.probe_timeout,
                             reconnect_retries=0) as admin:
                admin.health()
        except ScoringError:
            return False
        self._obs_probe_rtt.record(
            (time.perf_counter_ns() - probe_from) / 1000.0)
        return True

    def _note_probe(self, index: int, ok: bool) -> int:
        with self._lock:
            if ok:
                self._failures.pop(index, None)
                return 0
            self._failures[index] = self._failures.get(index, 0) + 1
            return self._failures[index]

    # -- manual fleet operations -------------------------------------------

    def drain_shard(self, index: int, timeout: float | None = None) -> int:
        """Gracefully retire shard *index*; returns its (exited) pid.

        Deregisters the shard (fresh client connections re-resolve to
        its siblings), sends the ``drain`` verb (new scoring requests
        are refused with a typed retryable frame while in-flight work
        finishes) and waits for the process to exit, escalating to
        SIGTERM/SIGKILL past *timeout* (default ``drain_timeout``).
        The shard stays excluded from healing and out of the registry
        — pair with :meth:`ShardManager.respawn` (what
        :meth:`rolling_restart` does) to bring a replacement up.  On
        sharded TCP there is no per-shard address to drain over, so
        the shard is terminated (SIGTERM runs the daemon's clean
        shutdown) instead.
        """
        proc = self.manager.proc(index)
        self._exclude(index)
        with self._ops:
            self.manager.deregister(index)
            if self.manager.socket_path is None:
                if proc.is_alive():
                    proc.terminate()
            elif proc.is_alive():
                path = shard_socket_path(self.manager.socket_path, index)
                try:
                    with AdminClient(socket_path=path,
                                     timeout=self.probe_timeout,
                                     reconnect_retries=0) as admin:
                        admin.drain()
                except ScoringError:
                    pass  # already dead or unreachable: the join decides
            limit = timeout if timeout is not None else self.drain_timeout
            proc.join(limit)
            if proc.is_alive():
                proc.terminate()
                proc.join(5.0)
            if proc.is_alive():
                proc.kill()
                proc.join(5.0)
            self._emit("drain", index, pid=proc.pid)
            return proc.pid

    def rolling_restart(self, ready_timeout: float | None = None) -> list:
        """Cycle every shard — drain, respawn, healthy — one at a time.

        The fleet never drops below N-1 serving shards: shard *i+1*
        is only drained once shard *i*'s replacement answers its
        health probe.  Returns the replacement pids in shard order.
        """
        pids: list = []
        for index in range(self.manager.shards):
            self.drain_shard(index)
            pid = self.manager.respawn(index, ready_timeout=ready_timeout)
            self._await_serving(index)
            self._unexclude(index)
            self._emit("restart", index, pid=pid)
            pids.append(pid)
        return pids

    def _await_serving(self, index: int, timeout: float = 15.0) -> None:
        if self.manager.socket_path is None:
            return  # respawn already waited for the daemon ready event
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self._probe(index):
                return
            time.sleep(0.1)
        raise DaemonError(
            f"respawned shard {index} never answered its health probe")

    def hot_swap(self, model: str, probe_rows, canary: int = 0,
                 expected=None) -> HotSwapReport:
        """Zero-downtime model refresh: warm, canary-score, promote.

        Warm-loads *model* into shard *canary*'s pool and scores
        *probe_rows* against it via per-request model routing — the
        serving default is untouched, so a bad artifact is caught
        before any traffic shifts.  *expected* (optional) gates
        promotion on the canary predictions matching exactly.  The key
        is then warm-loaded and promoted on every shard and the
        default route re-scored everywhere; the returned
        :class:`HotSwapReport` says whether all shards answered
        byte-identically to the canary.  Unix-socket deployments only
        (per-shard addressing).
        """
        base = self.manager.socket_path
        if base is None:
            raise DaemonError(
                "hot swap needs a unix-socket sharded deployment; "
                "SO_REUSEPORT TCP offers no per-shard addressing")
        rows = [[float(v) for v in row] for row in probe_rows]
        if not rows:
            raise DaemonError("hot swap needs a non-empty probe set")
        if not 0 <= canary < self.manager.shards:
            raise DaemonError(f"no shard with index {canary}")
        with self._ops:
            canary_path = shard_socket_path(base, canary)
            with AdminClient(socket_path=canary_path,
                             timeout=self.op_timeout) as admin:
                spec = admin.load_model(model)
                predictions = tuple(
                    admin.client.predict_batch(rows, model=spec))
            if expected is not None:
                gate = tuple(int(v) for v in expected)
                if gate != predictions:
                    raise DaemonError(
                        f"canary predictions for {spec!r} diverge from "
                        f"the expected gate; aborting before promotion")
            promoted: list = []
            shard_predictions: list = []
            identical = True
            for index in range(self.manager.shards):
                path = shard_socket_path(base, index)
                with AdminClient(socket_path=path,
                                 timeout=self.op_timeout) as admin:
                    admin.load_model(spec)
                    admin.promote(spec)
                    # the *default* route must now serve the new model
                    after = tuple(admin.client.predict_batch(rows))
                promoted.append(index)
                shard_predictions.append(after)
                if after != predictions:
                    identical = False
            report = HotSwapReport(
                model=spec, canary_shard=canary, predictions=predictions,
                promoted=tuple(promoted),
                shard_predictions=tuple(shard_predictions),
                identical=identical,
            )
            self._emit("hot_swap", None, model=spec, identical=identical)
            return report

    # -- bookkeeping --------------------------------------------------------

    @property
    def events(self) -> tuple:
        """A snapshot of the recent supervision events (bounded)."""
        with self._lock:
            return tuple(self._events)

    def _exclude(self, index: int) -> None:
        with self._lock:
            self._excluded.add(index)

    def _unexclude(self, index: int) -> None:
        with self._lock:
            self._excluded.discard(index)
            self._failures.pop(index, None)

    def _emit(self, event: str, shard=None, **extra) -> None:
        entry = {"event": event, "shard": shard, **extra}
        with self._lock:
            self._events.append(entry)
            del self._events[:-_EVENT_LIMIT]
        self.metrics.counter(
            "repro_supervisor_events_total", event=event).inc()
        # "pid" is reserved in the log schema (the supervisor's own);
        # the subject shard's pid travels as shard_pid
        fields = {("shard_pid" if k == "pid" else k): v
                  for k, v in extra.items()}
        log = self._log.error if event == "error" else self._log.info
        log(event, shard=shard, **fields)
        callback = self.on_event
        if callback is not None:
            try:
                callback(entry)
            except Exception:
                pass  # an observer must never take the supervisor down
