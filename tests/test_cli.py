"""CLI tests for the dataset-free subcommands and the api commands."""

import io
import json
import sys

import pytest

from repro.cli import main
from repro.dataset.registry import all_kernel_specs
from repro.version import CODE_VERSION, __version__


class TestCli:
    def test_list_kernels(self, capsys):
        assert main(["list-kernels"]) == 0
        out = capsys.readouterr().out
        assert "gemm" in out and "custom" in out
        assert len(out.strip().splitlines()) == 59

    def test_energy_model(self, capsys):
        assert main(["energy-model"]) == 0
        out = capsys.readouterr().out
        assert "Processing Element" in out
        assert "1212" in out  # the NOP energy

    def test_simulate(self, capsys):
        assert main(["simulate", "stream_triad", "--dtype", "fp32",
                     "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "<- minimum" in out
        assert "TOTAL" in out

    def test_mca(self, capsys):
        assert main(["mca", "gemm", "--size", "1024"]) == 0
        out = capsys.readouterr().out
        assert "Reverse block throughput" in out

    def test_unknown_kernel_errors(self):
        with pytest.raises(Exception):
            main(["simulate", "bogus_kernel"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert __version__ in out
        assert f"code version {CODE_VERSION}" in out

    def test_list_kernels_help_count_computed(self, capsys):
        """The help text derives the kernel count from the registry."""
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert f"list the {len(all_kernel_specs())} dataset kernels" in out


class TestCliApi:
    """train / predict / serve as thin clients of repro.api."""

    @pytest.fixture()
    def artifact(self, tmp_path, monkeypatch, tiny_dataset, capsys):
        monkeypatch.setattr("repro.api.classifier.build_dataset",
                            lambda *args, **kwargs: tiny_dataset)
        path = str(tmp_path / "model.json")
        assert main(["train", "--output", path]) == 0
        capsys.readouterr()
        return path

    def test_train_writes_artifact(self, artifact, capsys):
        with open(artifact) as handle:
            payload = json.load(handle)
        assert payload["code_version"] == CODE_VERSION
        assert payload["model_family"] == "tree"

    def test_predict_from_artifact(self, artifact, capsys):
        assert main(["predict", "gemm", "--model", artifact,
                     "--size", "512"]) == 0
        out = capsys.readouterr().out
        assert "predicted minimum-energy team size" in out

    def test_serve_from_artifact(self, artifact, capsys, monkeypatch):
        monkeypatch.setattr(
            sys, "stdin",
            io.StringIO('{"kernel": "gemm", "size": 512, "id": 1}\n'))
        assert main(["serve", "--model", artifact]) == 0
        out = capsys.readouterr().out
        response = json.loads(out.strip().splitlines()[0])
        assert response["ok"] is True
        assert response["prediction"] in range(1, 9)

    def test_predict_warm_path_hits_artifact_cache(
            self, tmp_path, monkeypatch, tiny_dataset, capsys):
        """The ROADMAP's warm pre-loading: a repeated default-model
        predict must load the cached artifact, not train again."""
        monkeypatch.setattr("repro.api.classifier.build_dataset",
                            lambda *args, **kwargs: tiny_dataset)
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE",
                           str(tmp_path / "cache"))
        from repro.api import Classifier
        trains = {"n": 0}
        real_train = Classifier.train

        def counting_train(self, *args, **kwargs):
            trains["n"] += 1
            return real_train(self, *args, **kwargs)

        monkeypatch.setattr(Classifier, "train", counting_train)
        assert main(["predict", "gemm", "--size", "512"]) == 0
        assert trains["n"] == 1
        assert "trained and cached" in capsys.readouterr().err
        assert main(["predict", "gemm", "--size", "512"]) == 0
        assert trains["n"] == 1  # served warm from the artifact cache
        assert "artifact cache hit" in capsys.readouterr().err

    def test_predict_variant_flags_select_cached_model(
            self, tmp_path, monkeypatch, tiny_dataset, capsys):
        """--family/--features pick which cached variant serves the
        warm path (not just the single tree/static-all default)."""
        monkeypatch.setattr("repro.api.classifier.build_dataset",
                            lambda *args, **kwargs: tiny_dataset)
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE",
                           str(tmp_path / "cache"))
        args = ["predict", "gemm", "--size", "512",
                "--features", "static-agg"]
        assert main(args) == 0
        assert "trained and cached" in capsys.readouterr().err
        assert main(args) == 0
        assert "artifact cache hit" in capsys.readouterr().err

    def test_serve_stdio_is_fleet_backed(self, tmp_path, monkeypatch,
                                         tiny_dataset, capsys):
        """stdio serving understands the model field and admin verbs."""
        monkeypatch.setattr("repro.api.classifier.build_dataset",
                            lambda *args, **kwargs: tiny_dataset)
        monkeypatch.setenv("REPRO_ARTIFACT_CACHE",
                           str(tmp_path / "cache"))
        monkeypatch.setattr(sys, "stdin", io.StringIO(
            '{"cmd": "list_models", "id": 1}\n'
            '{"kernel": "gemm", "size": 512, '
            '"model": "tree:static-agg", "id": 2}\n'))
        assert main(["serve", "--models", "tree:static-agg",
                     "--preload"]) == 0
        captured = capsys.readouterr()
        frames = [json.loads(line)
                  for line in captured.out.strip().splitlines()]
        assert [f["ok"] for f in frames] == [True, True]
        specs = [m["model"] for m in frames[0]["models"]]
        assert "tree:static-agg:paper" in specs
        assert frames[1]["prediction"] in range(1, 9)
        assert "pre-loaded model tree:static-agg:paper" in captured.err
