"""JSON-lines structured logging for the serving stack.

One :class:`JsonLogger` per component, emitting one JSON object per
line on stderr through the stdlib :mod:`logging` machinery (handlers
stay swappable for embedders).  Every record carries ``ts``, ``level``,
``component``, ``event`` and ``pid``; call-site keyword arguments and
logger-bound fields (e.g. a shard index) ride along as top-level keys::

    log = get_logger("supervisor")
    log.info("respawn", shard=2, pid=4711, reason="exit")

emits::

    {"ts": ..., "level": "info", "component": "supervisor",
     "event": "respawn", "pid": ..., "shard": 2, ...}

The threshold comes from ``REPRO_LOG_LEVEL`` (``debug`` / ``info`` /
``warning`` / ``error``; default ``info``) and is resolved when the
logger is built, so shard processes forked after an env change pick it
up independently.
"""

from __future__ import annotations

import json
import logging
import os
import sys

__all__ = ["JsonLogger", "get_logger"]

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

#: reserved record keys; caller fields never overwrite them.
_RESERVED = ("ts", "level", "component", "event", "pid")


def _env_level() -> int:
    name = os.environ.get("REPRO_LOG_LEVEL", "info").strip().lower()
    return _LEVELS.get(name, logging.INFO)


class _JsonFormatter(logging.Formatter):
    """Format one record as a single JSON object line."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "component": getattr(record, "component", record.name),
            "event": record.getMessage(),
            "pid": record.process,
        }
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            for key, value in fields.items():
                if key not in _RESERVED:
                    payload[key] = value
        # default=str so a non-JSON-safe field degrades to its repr
        # instead of killing the log line that was reporting a problem
        return json.dumps(payload, default=str)


def _backing_logger(component: str) -> logging.Logger:
    logger = logging.getLogger(f"repro.{component}")
    logger.setLevel(_env_level())
    logger.propagate = False
    if not logger.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(_JsonFormatter())
        logger.addHandler(handler)
    return logger


class JsonLogger:
    """A component-bound, field-carrying JSON-lines logger.

    Thin wrapper over one stdlib logger; :meth:`bind` derives a child
    sharing the handler but carrying extra constant fields (the shard
    index pattern), so every line of one shard is attributable without
    threading the index through every call site.
    """

    __slots__ = ("component", "_logger", "_bound")

    def __init__(self, component: str, _bound: dict | None = None) -> None:
        self.component = component
        self._logger = _backing_logger(component)
        self._bound = dict(_bound) if _bound else {}

    def bind(self, **fields) -> "JsonLogger":
        """A derived logger with *fields* attached to every record."""
        merged = dict(self._bound)
        merged.update(fields)
        return JsonLogger(self.component, _bound=merged)

    def _log(self, level: int, event: str, fields: dict) -> None:
        if not self._logger.isEnabledFor(level):
            return
        merged = dict(self._bound)
        merged.update(fields)
        self._logger.log(level, event,
                         extra={"component": self.component,
                                "fields": merged})

    def debug(self, event: str, **fields) -> None:
        self._log(logging.DEBUG, event, fields)

    def info(self, event: str, **fields) -> None:
        self._log(logging.INFO, event, fields)

    def warning(self, event: str, **fields) -> None:
        self._log(logging.WARNING, event, fields)

    def error(self, event: str, **fields) -> None:
        self._log(logging.ERROR, event, fields)


def get_logger(component: str, **fields) -> JsonLogger:
    """The JSON-lines logger for *component*, with optional bound fields."""
    logger = JsonLogger(component)
    return logger.bind(**fields) if fields else logger
