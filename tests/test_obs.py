"""Tests for the :mod:`repro.obs` telemetry subsystem.

Unit coverage for the metric primitives (counters, gauges, mergeable
histograms, quantile interpolation), the bucket-wise snapshot merge,
Prometheus text exposition, the JSON-lines logger and the sampled
tracer — then integration coverage for the ``{"cmd": "metrics"}``
verb, the fleet-wide ``collect_metrics`` merge (disjoint shard
latency profiles, dead shards) and the Chrome-trace span pipeline
through a live fleet daemon.
"""

import io
import json
import logging
import os

import pytest

from repro.api import (
    AdminClient,
    Classifier,
    ModelFleet,
    ReproConfig,
    ScoringClient,
    ScoringDaemon,
)
from repro.api.admin import collect_metrics
from repro.api.shard import write_registry
from repro.obs import (
    LATENCY_BUCKET_BOUNDS_US,
    JsonLogger,
    MetricsRegistry,
    Tracer,
    get_logger,
    histogram_quantile,
    merge_series,
    render_prometheus,
)
from repro.obs.metrics import Histogram


@pytest.fixture()
def trained(tiny_dataset) -> Classifier:
    return Classifier(ReproConfig(profile="unit")).train(tiny_dataset)


def capture_log(component: str):
    """Swap the component's handler for an in-memory stream; return
    (logger, read_lines)."""
    logger = get_logger(component)
    backing = logging.getLogger(f"repro.{component}")
    stream = io.StringIO()
    handler = logging.StreamHandler(stream)
    handler.setFormatter(backing.handlers[0].formatter)
    saved = backing.handlers[:]
    backing.handlers[:] = [handler]

    def lines():
        backing.handlers[:] = saved
        return [json.loads(line)
                for line in stream.getvalue().splitlines() if line]

    return logger, lines


class TestBuckets:
    def test_latency_bounds_are_increasing_and_span_the_decades(self):
        bounds = LATENCY_BUCKET_BOUNDS_US
        assert bounds[0] == 1.0
        assert bounds[-1] == 10_000_000.0
        assert all(a < b for a, b in zip(bounds, bounds[1:]))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("requests", verb="score")
        again = registry.counter("requests", verb="score")
        other = registry.counter("requests", verb="stats")
        assert first is again
        assert first is not other

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("thing")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("total", verb="score").inc(3)
        registry.gauge("lag_us").set(12.5)
        registry.histogram("latency_us").record(42.0)
        series = registry.snapshot()["series"]
        by_name = {row["name"]: row for row in series}
        assert by_name["total"]["kind"] == "counter"
        assert by_name["total"]["value"] == 3
        assert by_name["total"]["labels"] == {"verb": "score"}
        assert by_name["lag_us"]["value"] == 12.5
        hist = by_name["latency_us"]
        assert hist["count"] == 1
        assert sum(hist["counts"]) == 1
        assert len(hist["counts"]) == len(hist["bounds"]) + 1


class TestHistogram:
    def test_record_many_equals_repeated_records(self):
        one_by_one = Histogram()
        bulk = Histogram()
        for _ in range(7):
            one_by_one.record(33.0)
        bulk.record_many(33.0, 7)
        assert one_by_one.snapshot() == bulk.snapshot()

    def test_quantiles_interpolate_within_the_bucket(self):
        hist = Histogram(bounds=(10.0, 20.0, 40.0))
        for _ in range(10):
            hist.record(15.0)  # all land in (10, 20]
        snap = hist.snapshot()
        # rank q*10 sits inside the second bucket: lo=10, hi=20
        assert histogram_quantile(snap, 0.5) == pytest.approx(15.0)
        assert histogram_quantile(snap, 1.0) == pytest.approx(20.0)

    def test_empty_histogram_answers_zero(self):
        assert histogram_quantile(Histogram().snapshot(), 0.99) == 0.0

    def test_overflow_rank_answers_last_bound(self):
        hist = Histogram(bounds=(10.0, 20.0))
        hist.record(1e9)
        assert histogram_quantile(hist.snapshot(), 0.99) == 20.0


class TestMergeSeries:
    def test_counters_add_and_gauges_keep_the_maximum(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("served").inc(4)
        b.counter("served").inc(6)
        a.gauge("lag_us").set(10.0)
        b.gauge("lag_us").set(90.0)
        merged = {row["name"]: row
                  for row in merge_series([a.snapshot(), b.snapshot()])}
        assert merged["served"]["value"] == 10
        assert merged["lag_us"]["value"] == 90.0

    def test_merged_percentiles_equal_the_union_distribution(self):
        """Two shards with disjoint latency profiles: quantiles of the
        bucket-wise merge must equal quantiles of one histogram that
        saw all the traffic (what percentile averaging gets wrong)."""
        fast, slow, union = (MetricsRegistry(), MetricsRegistry(),
                             Histogram())
        for value in (3.0, 4.0, 5.0, 6.0, 7.0):
            fast.histogram("latency_us").record(value)
            union.record(value)
        for value in (30_000.0, 40_000.0, 50_000.0):
            slow.histogram("latency_us").record(value)
            union.record(value)
        merged = merge_series([fast.snapshot(), slow.snapshot()])
        (row,) = merged
        assert row["count"] == 8
        for q in (0.1, 0.5, 0.9, 0.99):
            assert histogram_quantile(row, q) == pytest.approx(
                histogram_quantile(union.snapshot(), q))

    def test_mismatched_bounds_merge_side_by_side(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("latency_us", bounds=(1.0, 2.0)).record(1.5)
        b.histogram("latency_us", bounds=(1.0, 2.0, 4.0)).record(1.5)
        merged = merge_series([a.snapshot(), b.snapshot()])
        assert len(merged) == 2  # never merged into each other

    def test_malformed_snapshots_are_skipped(self):
        good = MetricsRegistry()
        good.counter("served").inc(2)
        merged = merge_series([
            None,
            "nonsense",
            {"series": [{"kind": "counter"},       # no name
                        {"name": "served", "kind": "counter",
                         "value": 3}]},
            good.snapshot(),
        ])
        (row,) = merged
        assert row["value"] == 5


class TestPrometheus:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("repro_served_total", verb="score").inc(7)
        registry.gauge("repro_lag_us").set(3.5)
        text = render_prometheus(registry.snapshot()["series"])
        assert "# TYPE repro_served_total counter" in text
        assert 'repro_served_total{verb="score"} 7' in text
        assert "# TYPE repro_lag_us gauge" in text
        assert "repro_lag_us 3.5" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative_with_inf(self):
        hist = Histogram(bounds=(10.0, 20.0))
        hist.record(5.0)
        hist.record(15.0)
        hist.record(1e9)  # overflow
        row = {"name": "lat", "kind": "histogram", "labels": {},
               **hist.snapshot()}
        text = render_prometheus([row])
        assert 'lat_bucket{le="10"} 1' in text
        assert 'lat_bucket{le="20"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_count 3" in text

    def test_label_values_are_escaped(self):
        text = render_prometheus([
            {"name": "c", "kind": "counter", "value": 1,
             "labels": {"model": 'a"b\nc'}},
        ])
        assert 'model="a\\"b\\nc"' in text

    def test_empty_series_renders_empty(self):
        assert render_prometheus([]) == ""
        assert render_prometheus(None) == ""


class TestJsonLogger:
    def test_lines_are_json_with_reserved_keys(self):
        log, lines = capture_log("obs_test_a")
        log.info("served", shard=3, latency_us=12.5)
        (record,) = lines()
        assert record["component"] == "obs_test_a"
        assert record["event"] == "served"
        assert record["level"] == "info"
        assert record["pid"] == os.getpid()
        assert record["shard"] == 3
        assert record["latency_us"] == 12.5

    def test_caller_fields_never_shadow_reserved_keys(self):
        log, lines = capture_log("obs_test_b")
        log.info("served", level="hijacked", pid=-1)
        (record,) = lines()
        assert record["level"] == "info"
        assert record["pid"] == os.getpid()

    def test_bound_fields_ride_every_record(self):
        base, lines = capture_log("obs_test_c")
        bound = base.bind(shard=7)
        bound.info("one")
        bound.error("two", extra=True)
        one, two = lines()
        assert one["shard"] == 7 and two["shard"] == 7
        assert two["level"] == "error" and two["extra"] is True

    def test_non_json_safe_fields_degrade_to_repr(self):
        log, lines = capture_log("obs_test_d")
        log.info("served", weird={1, 2}.__class__)
        (record,) = lines()
        assert isinstance(record["weird"], str)

    def test_get_logger_binds_initial_fields(self):
        assert isinstance(get_logger("obs_test_e", shard=1), JsonLogger)


class TestTracer:
    def test_zero_rate_never_samples(self):
        tracer = Tracer(sample_rate=0.0)
        assert tracer.sampling is False
        assert not any(tracer.sample() for _ in range(100))

    def test_full_rate_samples_everything(self):
        tracer = Tracer(sample_rate=1.0)
        assert all(tracer.sample() for _ in range(100))

    def test_fractional_rate_is_every_nth(self):
        tracer = Tracer(sample_rate=0.25)
        hits = sum(tracer.sample() for _ in range(100))
        assert hits == 25

    def test_flush_writes_a_chrome_trace_document(self, tmp_path):
        path = str(tmp_path / "trace.json")
        tracer = Tracer(sample_rate=1.0, path=path)
        tracer.complete("predict", 1_000, 4_000, rows=20)
        assert tracer.flush() == path
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        (event,) = document["traceEvents"]
        assert event["name"] == "predict"
        assert event["ph"] == "X"
        assert event["dur"] == pytest.approx(3.0)  # microseconds
        assert event["args"] == {"rows": 20}

    def test_flush_with_nothing_buffered_returns_none(self, tmp_path):
        tracer = Tracer(sample_rate=1.0,
                        path=str(tmp_path / "trace.json"))
        assert tracer.flush() is None

    def test_buffer_bound_counts_drops(self):
        tracer = Tracer(sample_rate=1.0, max_events=2)
        for _ in range(5):
            tracer.complete("span", 0, 1)
        snap = tracer.snapshot()
        assert snap["buffered_events"] == 2
        assert snap["dropped_events"] == 3

    def test_slow_log_fires_only_above_threshold(self):
        tracer = Tracer(slow_request_us=1_000, component="obs_test_f")
        _, lines = capture_log("obs_test_f")
        tracer.observe_slow(999.0, "score")
        tracer.observe_slow(1_500.0, "score", codec="binary-v1")
        (record,) = lines()
        assert record["event"] == "slow_request"
        assert record["level"] == "warning"
        assert record["duration_us"] == 1500.0
        assert record["codec"] == "binary-v1"

    def test_from_env_reads_the_knobs(self, monkeypatch, tmp_path):
        path = str(tmp_path / "t.json")
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "0.5")
        monkeypatch.setenv("REPRO_TRACE_FILE", path)
        monkeypatch.setenv("REPRO_SLOW_REQUEST_US", "5000")
        tracer = Tracer.from_env()
        assert tracer.sampling is True
        assert tracer.path == path
        assert tracer.slow_request_us == 5000

    def test_from_env_garbage_disables_gracefully(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "banana")
        monkeypatch.delenv("REPRO_TRACE_FILE", raising=False)
        tracer = Tracer.from_env()
        assert tracer.sampling is False


class TestMetricsVerb:
    def test_round_trip_over_a_daemon(self, trained, tmp_path):
        path = str(tmp_path / "m.sock")
        row = [0.0] * len(trained.feature_names_)
        with ScoringDaemon(trained, socket_path=path, workers=1):
            with ScoringClient(socket_path=path) as client:
                client.predict(row)
                payload = client.request({"cmd": "metrics"})["metrics"]
        assert payload["enabled"] is True
        latency = [r for r in payload["series"]
                   if r["name"] == "repro_request_latency_us"
                   and r["labels"].get("verb") == "score"]
        assert sum(r["count"] for r in latency) == 1

    def test_admin_client_surface(self, trained, tmp_path):
        path = str(tmp_path / "m.sock")
        with ScoringDaemon(trained, socket_path=path, workers=1):
            with AdminClient(socket_path=path) as admin:
                payload = admin.metrics()
        assert payload["enabled"] is True
        assert isinstance(payload["series"], list)

    def test_metrics_false_daemon_reports_disabled(self, trained,
                                                   tmp_path):
        path = str(tmp_path / "m.sock")
        with ScoringDaemon(trained, socket_path=path, workers=1,
                           metrics=False):
            with ScoringClient(socket_path=path) as client:
                client.predict([0.0] * len(trained.feature_names_))
                payload = client.request({"cmd": "metrics"})["metrics"]
        assert payload == {"enabled": False, "series": []}

    def test_env_kill_switch(self, trained, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_METRICS", "0")
        path = str(tmp_path / "m.sock")
        with ScoringDaemon(trained, socket_path=path, workers=1):
            with ScoringClient(socket_path=path) as client:
                payload = client.request({"cmd": "metrics"})["metrics"]
        assert payload["enabled"] is False


class TestCollectMetrics:
    def test_disjoint_shards_merge_to_the_union_distribution(
            self, trained, tmp_path):
        """Two live shards with synthetic, disjoint latency profiles:
        the fleet-wide merge must carry the union distribution, and a
        quantile read off the merged row must match a histogram that
        saw every observation."""
        paths = [str(tmp_path / f"s{i}.sock") for i in range(2)]
        base = str(tmp_path / "fleet.sock")
        row = [0.0] * len(trained.feature_names_)
        profiles = ([5.0, 6.0, 7.0, 8.0],
                    [70_000.0, 80_000.0, 90_000.0])
        union = Histogram()
        daemons = [ScoringDaemon(trained, socket_path=path, workers=1)
                   for path in paths]
        with daemons[0], daemons[1]:
            for daemon, profile in zip(daemons, profiles):
                hist = daemon.engine.obs.histogram("synthetic_us")
                for value in profile:
                    hist.record(value)
                    union.record(value)
            for path in paths:
                with ScoringClient(socket_path=path) as client:
                    client.predict(row)
            write_registry(base, [
                {"index": i, "path": path, "pid": os.getpid()}
                for i, path in enumerate(paths)
            ])
            fleet = collect_metrics(base, timeout=5.0)
        assert fleet.live_shards == 2
        merged = {(r["name"],): r for r in fleet.series
                  if r["name"] == "synthetic_us"}
        (synthetic,) = merged.values()
        assert synthetic["count"] == 7
        for q in (0.25, 0.5, 0.9):
            assert histogram_quantile(synthetic, q) == pytest.approx(
                histogram_quantile(union.snapshot(), q))
        served = [r for r in fleet.series
                  if r["name"] == "repro_request_latency_us"
                  and r["labels"].get("verb") == "score"]
        assert sum(r["count"] for r in served) == 2  # one per shard

    def test_dead_shard_is_an_error_row_not_poison(self, trained,
                                                   tmp_path):
        live = str(tmp_path / "live.sock")
        dead = str(tmp_path / "dead.sock")  # never bound
        base = str(tmp_path / "fleet.sock")
        row = [0.0] * len(trained.feature_names_)
        with ScoringDaemon(trained, socket_path=live, workers=1):
            with ScoringClient(socket_path=live) as client:
                client.predict(row)
            write_registry(base, [
                {"index": 0, "path": live, "pid": os.getpid()},
                {"index": 1, "path": dead, "pid": 999999},
            ])
            fleet = collect_metrics(base, timeout=2.0)
        assert fleet.live_shards == 1
        ok_row, err_row = fleet.shards
        assert "error" not in ok_row
        assert err_row["shard"] == {"index": 1, "path": dead}
        assert err_row["error"]
        # the live shard still merged
        served = [r for r in fleet.series
                  if r["name"] == "repro_request_latency_us"]
        assert sum(r["count"] for r in served) == 1

    def test_prometheus_renders_the_merged_fleet(self, trained,
                                                 tmp_path):
        path = str(tmp_path / "s0.sock")
        base = str(tmp_path / "fleet.sock")
        row = [0.0] * len(trained.feature_names_)
        with ScoringDaemon(trained, socket_path=path, workers=1):
            with ScoringClient(socket_path=path) as client:
                client.predict(row)
            write_registry(base, [
                {"index": 0, "path": path, "pid": os.getpid()},
            ])
            fleet = collect_metrics(base, timeout=5.0)
        text = render_prometheus(list(fleet.series))
        assert "# TYPE repro_request_latency_us histogram" in text
        assert 'le="+Inf"' in text
        assert "repro_request_latency_us_count" in text

    def test_as_dict_round_trips_json(self, trained, tmp_path):
        path = str(tmp_path / "s0.sock")
        base = str(tmp_path / "fleet.sock")
        with ScoringDaemon(trained, socket_path=path, workers=1):
            write_registry(base, [
                {"index": 0, "path": path, "pid": os.getpid()},
            ])
            fleet = collect_metrics(base, timeout=5.0)
        assert json.loads(json.dumps(fleet.as_dict()))


class TestTraceSpans:
    def test_fleet_daemon_emits_all_five_span_names(
            self, trained, tmp_path, monkeypatch):
        """At sample rate 1 a fleet daemon must produce decode, queue,
        batch, predict and encode spans, flushed on shutdown as one
        Perfetto-loadable Chrome trace document."""
        trace_path = str(tmp_path / "trace.json")
        monkeypatch.setenv("REPRO_TRACE_SAMPLE", "1")
        monkeypatch.setenv("REPRO_TRACE_FILE", trace_path)
        path = str(tmp_path / "fleet.sock")
        fleet = ModelFleet(default=trained)
        X = [[0.0] * len(trained.feature_names_)] * 4
        with ScoringDaemon(fleet=fleet, socket_path=path, workers=2):
            with ScoringClient(socket_path=path) as client:
                client.predict(list(X[0]))   # fast path: decode+batch
                client.predict_batch(X)      # slow path: queue+predict
                client.request({"cmd": "stats"})
        with open(trace_path, encoding="utf-8") as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        names = {event["name"] for event in events}
        assert {"decode", "queue", "batch",
                "predict", "encode"} <= names
        for event in events:
            assert event["ph"] == "X"
            assert event["dur"] >= 0.0
