"""A1 — energy-model sensitivity ablation (ours).

Re-labels the dataset under Table-I variants; cached simulation counters
are reused, so only the energy integration reruns.  Shows how the label
distribution shifts when leakage/background or active-wait pricing
change — the design choice DESIGN.md calls out.
"""


from repro.experiments.ablation import run_energy_model_ablation
from repro.experiments.runner import active_profile

from benchmarks.conftest import write_artifact


def test_energy_model_ablation(dataset, benchmark):
    profile = active_profile()

    result = benchmark.pedantic(
        run_energy_model_ablation, args=(profile,), rounds=1, iterations=1)
    write_artifact("ablation_energy_model.txt", result.render())

    table1 = result.distributions["table1"]
    zero_leak = result.distributions["zero-leakage"]
    # with no background cost, shortening the runtime stops paying:
    # high-parallelism labels must lose mass
    assert zero_leak.get(8, 0) < table1.get(8, 0)
    # pricier active waits also push away from max parallelism
    nop4 = result.distributions["nop-x4"]
    assert nop4.get(8, 0) <= table1.get(8, 0)
    for dist in result.distributions.values():
        assert sum(dist.values()) == len(dataset)
