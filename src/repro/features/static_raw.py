"""RAW static features (paper Table IIa, after Grewe et al. CGO'13).

The paper keeps four of the six original OpenCL metrics, adapted to
PULP/OpenMP:

* ``op`` — number of computational opcodes (ALU, FP and JUMP families);
* ``tcdm`` — number of accesses to the on-cluster TCDM (all data lives
  there; the global/local and coalescing distinctions of the GPU world
  do not apply);
* ``transfer`` — amount of data the kernel works on, in bytes;
* ``avgws`` — average number of iterations of the kernel's parallel
  regions (the OpenMP replacement for OpenCL's per-kernel work-items).
"""

from __future__ import annotations

from repro.ir.nodes import Kernel
from repro.features.static_counts import summarize_kernel

RAW_FEATURES = ("op", "tcdm", "transfer", "avgws")


def extract_raw(kernel: Kernel) -> dict[str, float]:
    """Extract the four RAW metrics from a kernel's IR."""
    summary = summarize_kernel(kernel)
    trips = summary.region_trips
    avgws = sum(trips) / len(trips) if trips else 0.0
    return {
        "op": summary.total.comp,
        "tcdm": summary.total.tcdm,
        "transfer": float(kernel.total_array_bytes),
        "avgws": avgws,
    }
