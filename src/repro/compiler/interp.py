"""Reference interpreter backend.

Walks the IR directly and yields the *expanded* instruction stream (one
tuple per architectural instruction, no macro coalescing).  It is an
order of magnitude slower than the codegen backend and exists to
differentially test it: expanding the codegen stream must give exactly
this stream.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import LoweringError
from repro.ir.nodes import Compute, Critical, DmaCopy, Load, Loop, Store
from repro.isa.opcodes import (
    OP_ALU,
    OP_DMA,
    OP_JMP,
    OP_LD,
    OP_LD2,
    OP_LOCK,
    OP_ST,
    OP_ST2,
    OP_UNLOCK,
    pack_lock,
)
from repro.compiler.codegen import _KIND_TO_OP, _lock_index
from repro.platform.memory import MemoryMap


def interpret_segment(body: tuple, memmap: MemoryMap, n_l1_banks: int,
                      n_l2_banks: int, loop_var: str | None = None,
                      loop_range: tuple[int, int] | None = None,
                      prologue_alu: int = 0,
                      env: dict[str, int] | None = None,
                      ) -> Iterator[tuple[int, int]]:
    """Yield the expanded instruction stream of one run segment.

    *env* binds enclosing sequential-for variables referenced by the
    body's index expressions and bounds.
    """
    env = dict(env) if env else {}
    for _ in range(prologue_alu):
        yield (OP_ALU, 1)
    if loop_var is not None:
        lo, hi = loop_range
        for value in range(lo, hi):
            env[loop_var] = value
            yield (OP_ALU, 1)
            yield from _walk(body, env, memmap, n_l1_banks, n_l2_banks)
            yield (OP_JMP, 1)
    else:
        yield from _walk(body, env, memmap, n_l1_banks, n_l2_banks)


def _walk(body: tuple, env: dict[str, int], memmap: MemoryMap,
          n_l1_banks: int, n_l2_banks: int) -> Iterator[tuple[int, int]]:
    for stmt in body:
        if isinstance(stmt, Compute):
            op = _KIND_TO_OP[stmt.kind]
            for _ in range(stmt.count):
                yield (op, 1)
        elif isinstance(stmt, (Load, Store)):
            placement = memmap.placement(stmt.array)
            index = stmt.index.evaluate(env)
            if placement.space == "l1":
                op = OP_LD if isinstance(stmt, Load) else OP_ST
                yield (op, (placement.base_word + index) % n_l1_banks)
            else:
                op = OP_LD2 if isinstance(stmt, Load) else OP_ST2
                yield (op, (placement.base_word + index) % n_l2_banks)
        elif isinstance(stmt, Loop):
            yield (OP_ALU, 1)
            yield (OP_ALU, 1)
            lo = stmt.lower.evaluate(env)
            hi = stmt.upper.evaluate(env)
            for value in range(lo, hi):
                env[stmt.var] = value
                yield (OP_ALU, 1)
                yield from _walk(stmt.body, env, memmap, n_l1_banks,
                                 n_l2_banks)
                yield (OP_JMP, 1)
            env.pop(stmt.var, None)
        elif isinstance(stmt, Critical):
            packed = pack_lock(_lock_index(stmt.name),
                               memmap.lock_bank(stmt.name))
            yield (OP_LOCK, packed)
            yield from _walk(stmt.body, env, memmap, n_l1_banks, n_l2_banks)
            yield (OP_UNLOCK, packed)
        elif isinstance(stmt, DmaCopy):
            yield (OP_DMA, stmt.words)
        else:
            raise LoweringError(f"cannot interpret {type(stmt).__name__} "
                                f"inside a loop body")


def expand_stream(stream) -> Iterator[tuple[int, int]]:
    """Expand macro instructions into unit instructions (test helper)."""
    for op, arg in stream:
        if op in (OP_LD, OP_ST, OP_LD2, OP_ST2, OP_LOCK, OP_UNLOCK,
                  OP_DMA):
            yield (op, arg)
        else:
            for _ in range(arg):
                yield (op, 1)
