"""RPL003 — attributes guarded by a lock must never be written bare.

If one method writes ``self._requests_served`` inside ``with
self._lock`` and another method writes it without the lock, the guard
is decorative: the bare write races with every guarded reader.  The
rule learns, per class, which attributes are lock-guarded (assigned
under a ``with self.<lock>`` whose attribute name contains ``lock``)
and flags bare writes to those attributes elsewhere in the class.

Two escapes keep the rule honest:

* ``__init__`` may assign anything — construction happens before the
  object is shared, so there is nothing to race with;
* a method whose *every* in-class call site is already inside a
  ``with self.<lock>`` block (or inside ``__init__``, or inside
  another such method — computed as a fixpoint) holds the lock by
  construction, so its writes are guarded even without a syntactic
  ``with``.  This is the ``_connect -> _negotiate`` shape in
  :class:`repro.api.client.ScoringClient`.
"""

from __future__ import annotations

import ast

from repro.analysis.rules.base import (
    Rule,
    dotted_name,
    methods_of,
    walk_function_body,
)


def _lock_name(item: ast.withitem) -> str | None:
    """``"_lock"`` for ``with self._lock:``-style items, else ``None``."""
    expr = item.context_expr
    # `with self._lock:` and `with self._lock.acquire_timeout(...):`
    if isinstance(expr, ast.Call):
        expr = expr.func
        if isinstance(expr, ast.Attribute):
            expr = expr.value
    name = dotted_name(expr)
    if name and name.startswith("self."):
        attr = name[len("self.") :]
        if "lock" in attr.lower():
            return attr
    return None


def _assigned_self_attrs(node) -> list:
    """``self.<attr>`` names written by one statement node."""
    targets: list = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    out: list = []
    for target in targets:
        for element in ast.walk(target):
            if (
                isinstance(element, ast.Attribute)
                and isinstance(element.value, ast.Name)
                and element.value.id == "self"
            ):
                out.append(element.attr)
    return out


def _with_lock_regions(method) -> list:
    """``(with_node)`` for every ``with self.<lock>`` in *method*."""
    regions: list = []
    for node in walk_function_body(method, skip_nested=False):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(_lock_name(item) for item in node.items):
                regions.append(node)
    return regions


def _nodes_under(parents) -> set:
    """Identity set of every AST node inside any of *parents*."""
    covered: set = set()
    for parent in parents:
        for node in ast.walk(parent):
            covered.add(id(node))
    return covered


class _ClassFacts:
    """Lock usage facts for one class."""

    def __init__(self, cls: ast.ClassDef) -> None:
        self.cls = cls
        self.methods = methods_of(cls)
        # attr -> guarded writes exist; bare writes: (method, attr, node)
        self.guarded: set = set()
        self.bare_writes: list = []
        # method -> set of in-class call sites: (caller, under_lock)
        self.call_sites: dict = {}
        self._scan()

    def _scan(self) -> None:
        for name, method in self.methods.items():
            covered = _nodes_under(_with_lock_regions(method))
            for node in walk_function_body(method, skip_nested=False):
                under = id(node) in covered
                for attr in _assigned_self_attrs(node):
                    if under:
                        self.guarded.add(attr)
                    elif name != "__init__":
                        self.bare_writes.append((name, attr, node))
                if isinstance(node, ast.Call):
                    callee = dotted_name(node.func)
                    if callee and callee.startswith("self."):
                        target = callee[len("self.") :]
                        if target in self.methods:
                            self.call_sites.setdefault(target, []).append(
                                (name, under)
                            )

    def lock_held_methods(self) -> set:
        """Methods that provably run with the lock already held.

        Fixpoint: a method qualifies when it has at least one in-class
        call site and every call site is (a) under a ``with self.<lock>``,
        (b) in ``__init__``, or (c) in an already-qualified method.
        """
        held: set = set()
        changed = True
        while changed:
            changed = False
            for name, sites in self.call_sites.items():
                if name in held:
                    continue
                if all(
                    under or caller == "__init__" or caller in held
                    for caller, under in sites
                ):
                    held.add(name)
                    changed = True
        return held


class LockDiscipline(Rule):
    code = "RPL003"
    name = "lock-discipline"
    rationale = (
        "an attribute written under `with self._lock` in one method "
        "must not be written bare elsewhere in the class; the bare "
        "write races with every guarded access"
    )

    def check(self, project):
        for source in project.files:
            for cls in [
                n
                for n in ast.walk(source.tree)
                if isinstance(n, ast.ClassDef)
            ]:
                facts = _ClassFacts(cls)
                if not facts.guarded:
                    continue
                held = facts.lock_held_methods()
                for method, attr, node in facts.bare_writes:
                    if attr not in facts.guarded:
                        continue
                    if method in held:
                        continue
                    yield self.finding(
                        source.path,
                        node,
                        f"self.{attr} is written under the lock "
                        f"elsewhere in {cls.name} but written bare in "
                        f"{method}(); take the lock or document why "
                        f"this write cannot race",
                    )
