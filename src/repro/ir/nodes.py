"""IR node definitions.

A :class:`Kernel` is the unit the paper classifies: one ``void kernel(...)``
function.  Its body is a sequence of *top-level regions*:

* :class:`Sequential` — serial code executed by the master core while the
  rest of the team sleeps in clock gating;
* :class:`ParallelFor` — an OpenMP ``#pragma omp parallel for
  schedule(static)`` loop, the only worksharing construct the PULP OpenMP
  runtime of the paper supports;
* :class:`Barrier` — an explicit team barrier.

Inside loop bodies the leaves are counted compute ops (:class:`Compute`),
affine memory accesses (:class:`Load`/:class:`Store`), nested
:class:`Loop` nests and :class:`Critical` sections.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Mapping, Union

from repro.errors import IRError
from repro.ir.expr import Affine, AffineLike
from repro.ir.types import DType


class OpKind(Enum):
    """Kind of a counted compute op."""

    ALU = "alu"
    FP = "fp"
    DIV = "div"
    FPDIV = "fpdiv"
    JUMP = "jump"
    NOP = "nop"


@dataclass(frozen=True)
class Array:
    """A data array owned by the kernel.

    ``space`` selects the placement: ``"l1"`` puts the array in the
    on-cluster TCDM (the paper's default: every dataset instance fits in
    the 64 KiB scratchpad), ``"l2"`` in the off-cluster L2 memory.
    """

    name: str
    length: int
    dtype: DType
    space: str = "l1"

    def __post_init__(self) -> None:
        if self.length <= 0:
            raise IRError(f"array {self.name!r} must have positive length")
        if self.space not in ("l1", "l2"):
            raise IRError(f"array {self.name!r}: unknown space {self.space!r}")

    @property
    def size_bytes(self) -> int:
        return self.length * self.dtype.size_bytes


@dataclass(frozen=True)
class Compute:
    """*count* back-to-back ops of a single :class:`OpKind`."""

    kind: OpKind
    count: int = 1

    def __post_init__(self) -> None:
        if self.count <= 0:
            raise IRError(f"compute count must be positive, got {self.count}")


@dataclass(frozen=True)
class Load:
    """A word load from ``array[index]``."""

    array: str
    index: Affine

    def __post_init__(self) -> None:
        object.__setattr__(self, "index", Affine.wrap(self.index))


@dataclass(frozen=True)
class Store:
    """A word store to ``array[index]``."""

    array: str
    index: Affine

    def __post_init__(self) -> None:
        object.__setattr__(self, "index", Affine.wrap(self.index))


@dataclass(frozen=True)
class Loop:
    """A sequential counted loop ``for var in [lower, upper)``.

    Bounds are affine in the enclosing loop variables, which is enough for
    the rectangular and triangular nests of Polybench/UTDSP.
    """

    var: str
    lower: AffineLike
    upper: AffineLike
    body: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "lower", Affine.wrap(self.lower))
        object.__setattr__(self, "upper", Affine.wrap(self.upper))
        object.__setattr__(self, "body", tuple(self.body))
        if not self.var.isidentifier():
            raise IRError(f"loop variable {self.var!r} is not an identifier")
        if not self.body:
            raise IRError(f"loop over {self.var!r} has an empty body")


@dataclass(frozen=True)
class Critical:
    """A lock-protected critical section executed inside a parallel loop."""

    body: tuple
    name: str = "omp_critical"

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if not self.body:
            raise IRError("critical section has an empty body")


@dataclass(frozen=True)
class DmaCopy:
    """A blocking DMA transfer of *words* 32-bit words (L2 <-> TCDM).

    The issuing core programs the cluster DMA (one descriptor write) and
    sleeps clock-gated on the event unit until the transfer completes —
    the memory-hierarchy extension the paper's conclusions announce.
    ``direction`` is ``"in"`` (L2 -> TCDM) or ``"out"``.
    """

    words: int
    direction: str = "in"

    def __post_init__(self) -> None:
        if self.words <= 0:
            raise IRError(f"DMA transfer must move >= 1 word, "
                          f"got {self.words}")
        if self.direction not in ("in", "out"):
            raise IRError(f"unknown DMA direction {self.direction!r}")


@dataclass(frozen=True)
class ParallelFor:
    """``#pragma omp parallel for schedule(static)`` over ``[lower, upper)``.

    Iterations are distributed in contiguous chunks over the team; an
    implicit join barrier closes the region (``nowait`` removes it, as the
    OpenMP clause does).  Bounds are compile-time constants, or affine in
    the variables of enclosing :class:`SequentialFor` loops (the runtime
    recomputes static chunks at every region entry).
    """

    var: str
    lower: AffineLike
    upper: AffineLike
    body: tuple
    nowait: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "lower", Affine.wrap(self.lower))
        object.__setattr__(self, "upper", Affine.wrap(self.upper))
        object.__setattr__(self, "body", tuple(self.body))
        if not self.var.isidentifier():
            raise IRError(f"loop variable {self.var!r} is not an identifier")
        if not self.body:
            raise IRError(f"parallel loop over {self.var!r} has an empty body")


@dataclass(frozen=True)
class Sequential:
    """Serial top-level code executed by the master core."""

    body: tuple

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))
        if not self.body:
            raise IRError("sequential region has an empty body")


@dataclass(frozen=True)
class Barrier:
    """An explicit team barrier between top-level regions."""


@dataclass(frozen=True)
class SequentialFor:
    """A serial counted loop *around* parallel regions.

    This is the ubiquitous embedded-OpenMP shape::

        for (t = 0; t < steps; t++) {      // time steps / pivots / stages
            #pragma omp parallel for
            for (...) { ... }
        }

    The loop bounds are compile-time constants; the regions inside may
    reference ``var`` in their loop bounds and index expressions.  Each
    iteration re-opens its parallel regions, paying the full fork/join
    tax — which is exactly what makes these kernels interesting for the
    energy/parallelism trade-off.
    """

    var: str
    lower: AffineLike
    upper: AffineLike
    body: tuple  # top-level regions: ParallelFor | Sequential | Barrier

    def __post_init__(self) -> None:
        object.__setattr__(self, "lower", Affine.wrap(self.lower))
        object.__setattr__(self, "upper", Affine.wrap(self.upper))
        object.__setattr__(self, "body", tuple(self.body))
        if not self.var.isidentifier():
            raise IRError(f"loop variable {self.var!r} is not an identifier")
        if not self.body:
            raise IRError(f"sequential-for over {self.var!r} is empty")
        if not self.lower.is_constant or not self.upper.is_constant:
            raise IRError("sequential-for bounds must be compile-time "
                          "constants")


#: Statements allowed inside loop bodies.
BodyStmt = Union[Compute, Load, Store, Loop, Critical, DmaCopy]
#: Statements allowed at kernel top level.
TopStmt = Union[Sequential, ParallelFor, Barrier, SequentialFor]


@dataclass(frozen=True)
class Kernel:
    """A complete dataset kernel instance.

    ``size_bytes`` is the paper's *transfer* parameter: the total payload
    the kernel works on.  ``meta`` carries provenance (suite name, notes).
    """

    name: str
    dtype: DType
    size_bytes: int
    arrays: tuple
    body: tuple
    meta: Mapping[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "arrays", tuple(self.arrays))
        object.__setattr__(self, "body", tuple(self.body))
        object.__setattr__(self, "meta", dict(self.meta))

    def array(self, name: str) -> Array:
        for arr in self.arrays:
            if arr.name == name:
                return arr
        raise IRError(f"kernel {self.name!r} has no array {name!r}")

    @property
    def total_array_bytes(self) -> int:
        return sum(arr.size_bytes for arr in self.arrays)

    def parallel_regions(self) -> Iterator[ParallelFor]:
        """All parallel regions, including those inside sequential-fors
        (each such region yielded once, not once per iteration)."""
        for stmt in self.body:
            if isinstance(stmt, ParallelFor):
                yield stmt
            elif isinstance(stmt, SequentialFor):
                for inner in stmt.body:
                    if isinstance(inner, ParallelFor):
                        yield inner


def walk_body(stmts: tuple) -> Iterator[BodyStmt]:
    """Depth-first walk over every statement of a loop body tree."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, Loop):
            yield from walk_body(stmt.body)
        elif isinstance(stmt, Critical):
            yield from walk_body(stmt.body)
