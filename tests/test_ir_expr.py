"""Unit + property tests for affine expressions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ir.expr import Affine, var

_NAMES = ("i", "j", "k", "t")


def affines(max_coef: int = 50):
    coefs = st.integers(min_value=-max_coef, max_value=max_coef)
    terms = st.dictionaries(st.sampled_from(_NAMES), coefs, max_size=4)
    return st.builds(Affine, coefs, terms)


def envs():
    return st.fixed_dictionaries(
        {name: st.integers(min_value=-100, max_value=100)
         for name in _NAMES})


class TestConstruction:
    def test_var_is_identity_term(self):
        expr = var("i")
        assert expr.terms == {"i": 1} and expr.const == 0

    def test_var_rejects_non_identifier(self):
        with pytest.raises(ValueError):
            var("not an id")

    def test_zero_coefficients_are_dropped(self):
        assert Affine(3, {"i": 0}).terms == {}

    def test_wrap_rejects_floats(self):
        with pytest.raises(TypeError):
            Affine.wrap(1.5)


class TestAlgebra:
    @given(affines(), affines(), envs())
    def test_addition_commutes_with_evaluation(self, a, b, env):
        assert (a + b).evaluate(env) == a.evaluate(env) + b.evaluate(env)

    @given(affines(), st.integers(min_value=-20, max_value=20), envs())
    def test_scaling_commutes_with_evaluation(self, a, factor, env):
        assert (a * factor).evaluate(env) == factor * a.evaluate(env)

    @given(affines(), affines(), envs())
    def test_subtraction(self, a, b, env):
        assert (a - b).evaluate(env) == a.evaluate(env) - b.evaluate(env)

    @given(affines(), envs())
    def test_negation(self, a, env):
        assert (-a).evaluate(env) == -a.evaluate(env)

    def test_product_of_two_variables_rejected(self):
        with pytest.raises(TypeError):
            var("i") * var("j")

    def test_product_with_constant_affine_allowed(self):
        assert (var("i") * Affine(3)).evaluate({"i": 5}) == 15

    @given(affines())
    def test_equality_and_hash_consistency(self, a):
        clone = Affine(a.const, dict(a.terms))
        assert a == clone and hash(a) == hash(clone)

    def test_int_mixing(self):
        expr = 2 + var("i") * 3 - 1
        assert expr.evaluate({"i": 4}) == 13


class TestRendering:
    @given(affines(), envs())
    def test_to_python_matches_evaluate(self, a, env):
        rendered = a.to_python()
        assert eval(rendered, {}, dict(env)) == a.evaluate(env)

    def test_substitute(self):
        expr = var("i") * 2 + var("j") + 1
        result = expr.substitute({"i": Affine(3)})
        assert result == var("j") + 7

    @given(affines(), envs())
    def test_substitute_full_env_is_constant(self, a, env):
        result = a.substitute({name: env[name] for name in a.variables()})
        assert result.is_constant
        assert result.const == a.evaluate(env)
