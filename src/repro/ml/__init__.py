"""Machine-learning stack (from scratch, numpy only).

The paper trains a CART-style decision tree and reports accuracy under
10-fold stratified cross-validation repeated 100 times, plus gini
feature importances (Table IV) and an energy-tolerance-aware accuracy
(Figure 2).  scikit-learn is not available offline, so this package
implements the required pieces directly:

* :class:`DecisionTreeClassifier` — CART with gini impurity and
  impurity-decrease feature importances;
* :class:`RandomForestClassifier` — bagged trees (robustness extension);
* :func:`stratified_kfold` / :func:`cross_val_predict` /
  :func:`repeated_cv_predict` — evaluation drivers;
* :mod:`repro.ml.metrics` — plain and tolerance accuracies, confusion
  matrices;
* :mod:`repro.ml.baselines` — the paper's "always-8" policy.
"""

from repro.ml.tree import DecisionTreeClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.model_selection import (
    cross_val_predict,
    repeated_cv_predict,
    stratified_kfold,
)
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    tolerance_accuracy,
    tolerance_curve,
)
from repro.ml.baselines import AlwaysKClassifier

__all__ = [
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "stratified_kfold",
    "cross_val_predict",
    "repeated_cv_predict",
    "accuracy",
    "tolerance_accuracy",
    "tolerance_curve",
    "confusion_matrix",
    "AlwaysKClassifier",
]
