"""``repro.obs`` — telemetry for the serving stack.

Three small, dependency-free layers the serving code threads through
every transport (see the README's "Observability" section):

* :mod:`repro.obs.metrics` — counters, gauges and mergeable
  fixed-bucket latency histograms behind one
  :class:`~repro.obs.metrics.MetricsRegistry` per process;
* :mod:`repro.obs.trace` — sampled Chrome-``trace_event`` spans and
  the always-on slow-request log;
* :mod:`repro.obs.log` — the JSON-lines structured logger;
* :mod:`repro.obs.prom` — Prometheus text exposition of (merged)
  registry snapshots.
"""

from repro.obs.log import JsonLogger, get_logger
from repro.obs.metrics import (
    BATCH_BUCKET_BOUNDS_ROWS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKET_BOUNDS_US,
    MetricsRegistry,
    SIZE_BUCKET_BOUNDS_BYTES,
    histogram_quantile,
    merge_series,
)
from repro.obs.prom import render_prometheus
from repro.obs.trace import DEFAULT_SLOW_REQUEST_US, Tracer

__all__ = [
    "BATCH_BUCKET_BOUNDS_ROWS",
    "Counter",
    "DEFAULT_SLOW_REQUEST_US",
    "Gauge",
    "Histogram",
    "JsonLogger",
    "LATENCY_BUCKET_BOUNDS_US",
    "MetricsRegistry",
    "SIZE_BUCKET_BOUNDS_BYTES",
    "Tracer",
    "get_logger",
    "histogram_quantile",
    "merge_series",
    "render_prometheus",
]
