"""repro — reproduction of "Source Code Classification for Energy
Efficiency in Parallel Ultra Low-Power Microcontrollers" (DATE 2021).

Public API tour:

* build kernels with :mod:`repro.ir` (or take them from
  :mod:`repro.dataset`);
* simulate them on the PULP cluster model with :func:`repro.sim.simulate`
  / :func:`repro.sim.sweep_cores`;
* account energy with :mod:`repro.energy`;
* extract paper features with :mod:`repro.features`;
* train/evaluate the classifier with :mod:`repro.ml`;
* regenerate the paper's tables and figures with :mod:`repro.experiments`.
"""

from repro.version import CODE_VERSION, __version__

from repro.energy import EnergyModel, compute_energy
from repro.platform import ClusterConfig
from repro.sim import simulate, sweep_cores

__all__ = [
    "__version__",
    "CODE_VERSION",
    "EnergyModel",
    "compute_energy",
    "ClusterConfig",
    "simulate",
    "sweep_cores",
]
