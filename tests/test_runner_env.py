"""Tests for the experiment runner's environment handling."""

import pytest

from repro.experiments.runner import (
    active_profile,
    cv_repeats,
    default_jobs,
)


class TestEnv:
    def test_default_profile(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert active_profile() == "paper"
        assert active_profile("quick") == "quick"

    def test_profile_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "unit")
        assert active_profile() == "unit"

    def test_repeats_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_CV_REPEATS", raising=False)
        assert cv_repeats() == 10
        assert cv_repeats(3) == 3

    def test_repeats_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CV_REPEATS", "100")
        assert cv_repeats() == 100

    def test_repeats_bad_value_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_CV_REPEATS", "lots")
        with pytest.warns(RuntimeWarning, match="REPRO_CV_REPEATS"):
            assert cv_repeats(7) == 7

    def test_unknown_profile_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_PROFILE", "bogus")
        with pytest.warns(RuntimeWarning, match="REPRO_PROFILE"):
            assert active_profile() == "bogus"

    def test_jobs_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        monkeypatch.delenv("REPRO_JOBS")
        assert default_jobs() == 1

    def test_repeats_clamped_to_one(self, monkeypatch):
        monkeypatch.setenv("REPRO_CV_REPEATS", "0")
        assert cv_repeats() == 1
