"""Dynamic feature tests (paper Table III)."""

import pytest

from repro.features.dynamic import (
    DYNAMIC_METRICS,
    dynamic_feature_names,
    extract_dynamic,
    flatten_dynamic,
)
from repro.features.sets import FEATURE_SETS, feature_names, sample_vector
from repro.errors import FeatureError
from repro.ir.types import DType
from repro.sim.engine import simulate
from tests.conftest import make_axpy


class TestExtractDynamic:
    def test_metric_names(self):
        counters = simulate(make_axpy(DType.INT32, 512), 2)
        metrics = extract_dynamic(counters)
        assert set(metrics) == set(DYNAMIC_METRICS)
        assert len(DYNAMIC_METRICS) == 10

    def test_fractions_bounded(self):
        for team in (1, 4, 8):
            counters = simulate(make_axpy(DType.FP32, 512), team)
            metrics = extract_dynamic(counters)
            assert 0.0 <= metrics["PE_idle"] <= 1.0
            assert 0.0 <= metrics["PE_sleep"] <= 1.0

    def test_sleep_decreases_with_team_size(self):
        # more active cores -> smaller mean clock-gated fraction
        sleeps = []
        for team in (1, 4, 8):
            counters = simulate(make_axpy(DType.INT32, 2048), team)
            sleeps.append(extract_dynamic(counters)["PE_sleep"])
        assert sleeps[0] > sleeps[1] > sleeps[2]

    def test_counts_match_counters(self):
        counters = simulate(make_axpy(DType.FP32, 512), 4)
        metrics = extract_dynamic(counters)
        assert metrics["PE_l1"] == sum(c.l1_ops for c in counters.cores)
        assert metrics["L1_read"] == counters.total_l1_reads
        assert metrics["L1_write"] == counters.total_l1_writes
        assert metrics["PE_fp"] == sum(c.fp_ops + c.fpdiv_ops
                                       for c in counters.cores)

    def test_l1_idle_complements_accesses(self):
        counters = simulate(make_axpy(DType.INT32, 512), 1)
        metrics = extract_dynamic(counters)
        accesses = counters.total_l1_reads + counters.total_l1_writes
        assert metrics["L1_idle"] == 16 * counters.cycles - accesses


class TestFlattening:
    def test_names_cover_all_teams(self):
        names = dynamic_feature_names()
        assert len(names) == 80
        assert "PE_sleep@8" in names and "L1_conflicts@1" in names

    def test_flatten(self):
        per_team = {1: {"PE_idle": 0.5}, 2: {"PE_idle": 0.25}}
        flat = flatten_dynamic(per_team)
        assert flat == {"PE_idle@1": 0.5, "PE_idle@2": 0.25}


class TestFeatureSets:
    def test_registry_contents(self):
        assert set(FEATURE_SETS) == {
            "static-raw", "static-agg", "static-mca", "static-raw+mca",
            "static-agg+mca", "static-all", "dynamic",
        }
        assert len(feature_names("static-agg")) == 3
        assert len(feature_names("static-raw+mca")) == 17
        assert len(feature_names("static-agg+mca")) == 16
        assert len(feature_names("dynamic")) == 80

    def test_unknown_set_rejected(self):
        with pytest.raises(FeatureError):
            feature_names("static-bogus")

    def test_sample_vector_lookup(self):
        static = {"F1": 1.0, "F3": 2.0}
        dynamic = {"PE_idle@1": 0.5}
        vec = sample_vector(static, dynamic, ["F3", "PE_idle@1", "F1"])
        assert vec == [2.0, 0.5, 1.0]

    def test_sample_vector_missing_feature(self):
        with pytest.raises(FeatureError):
            sample_vector({}, {}, ["nope"])
