"""Lowering from kernel IR to per-core instruction programs.

The compiler plays the role of the PULP GCC/OpenMP toolchain in the
paper's flow: it distributes ``parallel for`` iterations over the team
with OpenMP ``schedule(static)`` chunking, inserts the runtime's
fork/join instruction overhead and the implicit region barriers, resolves
affine array indices to TCDM/L2 bank numbers through the memory map, and
emits one instruction stream per core.

Two interchangeable backends exist:

* :mod:`repro.compiler.codegen` compiles each stream to Python source
  (executed once) — the fast path used by the simulator;
* :mod:`repro.compiler.interp` interprets the IR directly — the slow
  reference used to differentially test the code generator.
"""

from repro.compiler.lowering import LoweredProgram, lower_kernel
from repro.compiler.schedule import static_chunks

__all__ = ["LoweredProgram", "lower_kernel", "static_chunks"]
