"""End-to-end pipeline benchmark: campaign scaling + batched inference.

Times (a) a cold labelling-campaign build at ``--jobs 1`` vs
``--jobs N`` (fresh cache directories, so both runs simulate
everything) and (b) 10k-row forest/tree inference with the seed
per-row loops vs the vectorized implementations, then writes the
numbers to ``BENCH_pipeline.json`` so later PRs can track the
trajectory.

Run from the repo root as a single command::

    python benchmarks/bench_pipeline.py [--profile quick] [--jobs 4]
        [--rows 10000] [--output BENCH_pipeline.json]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, "src"))

import numpy as np  # noqa: E402

from repro.dataset.build import build_dataset  # noqa: E402
from repro.ml.forest import RandomForestClassifier  # noqa: E402
from repro.ml.tree import DecisionTreeClassifier  # noqa: E402


def bench_cold_build(profile: str, jobs: int) -> dict:
    """Wall-clock of one cold campaign (fresh cache dir) at *jobs*."""
    cache_dir = tempfile.mkdtemp(prefix=f"bench_cache_j{jobs}_")
    try:
        start = time.perf_counter()
        dataset = build_dataset(profile, cache_dir=cache_dir, jobs=jobs)
        elapsed = time.perf_counter() - start
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {"jobs": jobs, "seconds": round(elapsed, 3),
            "n_samples": len(dataset)}


def bench_inference(rows: int, seed: int = 0) -> dict:
    """Seed per-row loops vs vectorized predict on *rows* random rows."""
    rng = np.random.default_rng(seed)
    X_train = rng.standard_normal((600, 24))
    y_train = rng.integers(1, 9, size=600)
    X = rng.standard_normal((rows, 24))

    tree = DecisionTreeClassifier(max_depth=12, random_state=0)
    tree.fit(X_train, y_train)
    start = time.perf_counter()
    tree_rowwise = tree._predict_rowwise(X)
    tree_rowwise_s = time.perf_counter() - start
    start = time.perf_counter()
    tree_batched = tree.predict(X)
    tree_batched_s = time.perf_counter() - start
    if not np.array_equal(tree_rowwise, tree_batched):
        raise AssertionError("batched tree predictions diverge from the "
                             "row-wise reference")

    forest = RandomForestClassifier(n_estimators=30, max_depth=12,
                                    random_state=0)
    forest.fit(X_train, y_train)
    start = time.perf_counter()
    forest_loop = forest._predict_loop(X)
    forest_loop_s = time.perf_counter() - start
    start = time.perf_counter()
    forest_vec = forest.predict(X)
    forest_vec_s = time.perf_counter() - start
    if not np.array_equal(forest_loop, forest_vec):
        raise AssertionError("vectorized forest predictions diverge from "
                             "the per-row voting reference")

    return {
        "rows": rows,
        "tree": {"rowwise_seconds": round(tree_rowwise_s, 4),
                 "batched_seconds": round(tree_batched_s, 4),
                 "speedup": round(tree_rowwise_s / tree_batched_s, 2)},
        "forest": {"rowwise_seconds": round(forest_loop_s, 4),
                   "vectorized_seconds": round(forest_vec_s, 4),
                   "speedup": round(forest_loop_s / forest_vec_s, 2)},
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--profile", default="quick",
                        help="campaign profile to cold-build "
                             "(default quick)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="parallel worker count to compare against "
                             "--jobs 1 (default 4)")
    parser.add_argument("--rows", type=int, default=10_000,
                        help="inference batch size (default 10000)")
    parser.add_argument("--output", default="BENCH_pipeline.json")
    parser.add_argument("--skip-build", action="store_true",
                        help="only run the inference benchmark")
    args = parser.parse_args(argv)

    results: dict = {
        "bench": "pipeline",
        "profile": args.profile,
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
    }

    if not args.skip_build:
        print(f"cold build, profile={args.profile!r}, jobs=1 ...",
              flush=True)
        serial = bench_cold_build(args.profile, jobs=1)
        print(f"  {serial['seconds']:.2f} s "
              f"({serial['n_samples']} samples)")
        print(f"cold build, profile={args.profile!r}, "
              f"jobs={args.jobs} ...", flush=True)
        parallel = bench_cold_build(args.profile, jobs=args.jobs)
        print(f"  {parallel['seconds']:.2f} s")
        results["cold_build"] = {
            "serial": serial,
            "parallel": parallel,
            "speedup": round(serial["seconds"] / parallel["seconds"], 2),
        }

    print(f"inference, {args.rows} rows ...", flush=True)
    results["inference"] = bench_inference(args.rows)
    print(f"  tree    x{results['inference']['tree']['speedup']}")
    print(f"  forest  x{results['inference']['forest']['speedup']}")

    with open(args.output, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
