"""Command-line interface.

Examples::

    repro build-dataset --profile paper
    repro build-dataset --profile quick --jobs 4
    repro dataset-stats
    repro figure2 --panel left
    repro table4
    repro headline
    repro simulate gemm --dtype fp32 --size 2048
    repro mca gemm --dtype fp32 --size 2048

    repro train --features static-all --model tree -o model.json
    repro predict gemm --model model.json --dtype fp32 --size 2048
    repro serve --model model.json < requests.jsonl
    repro serve --model model.json --socket /tmp/repro.sock --workers 8
    repro serve --model model.json --tcp 127.0.0.1:7878
    repro serve --socket /tmp/repro.sock \\
        --models forest:static-all,tree:static-agg --preload \\
        --max-batch 64 --max-delay-us 2000 --memory-budget-mb 64
    repro serve --socket /tmp/repro.sock --shards 4 --supervise

    repro fleet stats --socket /tmp/repro.sock
    repro fleet metrics --prom --socket /tmp/repro.sock
    repro fleet health --socket /tmp/repro.sock --shard 0
    repro fleet models --socket /tmp/repro.sock
    repro fleet load forest:static-all --socket /tmp/repro.sock
    repro fleet promote forest:static-all --socket /tmp/repro.sock
    repro fleet drain --socket /tmp/repro.sock --shard 2
    repro fleet restart --socket /tmp/repro.sock

``--jobs N`` (or ``REPRO_JOBS=N``) runs the labelling campaign on N
worker processes; ``--jobs 0`` uses every CPU.  The on-disk simulation
cache is shared safely between workers (atomic, collision-free writes)
and the assembled dataset is identical for any worker count.

``train`` / ``predict`` / ``serve`` are thin clients of
:mod:`repro.api`: ``train`` fits the configured model family once and
writes a JSON artifact (skipping the fit entirely when the artifact
cache already holds an up-to-date model — ``--force`` overrides),
``predict`` scores a kernel against it, and ``serve`` answers
JSON-lines scoring requests on stdin/stdout, or — with ``--socket
PATH`` / ``--tcp HOST:PORT`` — as a persistent daemon serving many
concurrent clients (see :mod:`repro.api.service` and
:mod:`repro.api.daemon` for the protocol).  The daemon is a **model
fleet** (:mod:`repro.api.fleet`): requests pick a resident model with
a ``"model"`` key, ``--models``/``--preload`` warm-load extra variants
at startup, ``--memory-budget-mb``/``--max-models`` bound the resident
set with LRU eviction, and ``--max-batch``/``--max-delay-us`` tune the
micro-batching that coalesces concurrent single-row requests into
batched predictions.  ``--shards N`` scales the daemon to N processes
behind one endpoint (``SO_REUSEPORT`` on TCP, a shard registry on unix
sockets — see :mod:`repro.api.shard`), and ``--supervise`` runs a
:class:`repro.api.ShardSupervisor` next to them: crashed shards are
respawned (registry refreshed), drained shards hand their traffic to
siblings, and ``repro fleet restart`` composes the two into a rolling
restart.  ``repro fleet`` is the operator surface over the typed
:class:`repro.api.AdminClient` — stats/health/model listing, warm
loads, eviction, default promotion and graceful drains against a
running deployment.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import (
    Classifier,
    ReproConfig,
    ScoringDaemon,
    active_profile,
    artifact_path,
    fleet_factory,
    load_or_train,
    parse_tcp_endpoint,
    serve,
)
from repro.api.classifier import BACKEND_COMPILED, BACKENDS
from repro.api.daemon import DEFAULT_WORKERS
from repro.api.fleet import (
    DEFAULT_MAX_BATCH,
    DEFAULT_MAX_DELAY_US,
)
from repro.api.wire import CODEC_JSON
from repro.api.registry import (
    available_feature_sets,
    available_model_families,
)
from repro.dataset.build import build_dataset
from repro.dataset.registry import all_kernel_specs, get_kernel_spec
from repro.energy.model import EnergyModel
from repro.energy.report import format_breakdown, format_model_table
from repro.experiments.dataset_stats import run_dataset_stats
from repro.experiments.figure2 import run_figure2
from repro.experiments.headline import run_headline
from repro.experiments.table4 import run_table4
from repro.features.mca import mca_report
from repro.ir.types import parse_dtype
from repro.sim.results import minimum_energy_label, sweep_cores
from repro.version import CODE_VERSION, __version__


def _add_dataset_opts(parser: argparse.ArgumentParser) -> None:
    """Accept --profile/--jobs after the subcommand as well as before.

    SUPPRESS keeps an omitted subcommand-position option from
    clobbering a value parsed from the main-parser position.
    """
    parser.add_argument("--profile", default=argparse.SUPPRESS,
                        help="dataset profile: paper, quick or unit")
    parser.add_argument("--jobs", type=int, default=argparse.SUPPRESS,
                        help="worker processes; 0 means one per CPU")


def _add_kernel_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("kernel", help="kernel name (see list-kernels)")
    parser.add_argument("--dtype", default="int32",
                        help="int32 or fp32 (default int32)")
    parser.add_argument("--size", type=int, default=2048,
                        help="payload bytes (default 2048)")


def _build_kernel(args):
    spec = get_kernel_spec(args.kernel)
    return spec.build(parse_dtype(args.dtype), args.size)


def _load_or_train(args, profile: str, progress) -> Classifier:
    """The classifier behind ``predict`` / ``serve``: a saved artifact
    when ``--model`` is given, otherwise the artifact cache (which
    trains the configured variant on a miss and reuses it afterwards).

    ``--family`` / ``--features`` select which cached variant serves
    the warm path, so any model the cache already holds is reused
    without retraining — the ROADMAP's warm pre-loading for
    ``predict``; ``--backend`` picks the execution backend (compiled
    decision tables by default)."""
    backend = getattr(args, "backend", BACKEND_COMPILED)
    if args.model:
        return Classifier.load(args.model, backend=backend)
    config = ReproConfig(profile=profile, jobs=args.jobs,
                         model=getattr(args, "family", "tree"),
                         feature_set=getattr(args, "features",
                                             "static-all"))
    print(f"no --model artifact given; consulting the artifact cache "
          f"(profile {profile!r}, {config.model}:"
          f"{config.feature_set})...", file=sys.stderr)
    clf, hit = load_or_train(config, progress=progress, backend=backend)
    print("artifact cache hit" if hit else
          f"trained and cached {artifact_path(config)}", file=sys.stderr)
    return clf


def _add_variant_opts(parser: argparse.ArgumentParser) -> None:
    """Default-model variant selection for ``predict`` / ``serve``."""
    parser.add_argument("--family", default="tree",
                        help="model family for the default model when "
                             "no --model artifact is given: "
                             + ", ".join(available_model_families()))
    parser.add_argument("--features", default="static-all",
                        help="feature set for the default model when "
                             "no --model artifact is given: "
                             + ", ".join(available_feature_sets()))
    parser.add_argument("--backend", choices=BACKENDS,
                        default=BACKEND_COMPILED,
                        help="prediction backend: compiled flat "
                             "decision tables (default; byte-identical "
                             "results) or the reference node-walk "
                             "model objects")


def _serve_codecs(args) -> tuple | None:
    """``--codec`` to the daemon's offered-codec tuple (None = default)."""
    if getattr(args, "codec", "auto") == "json":
        return (CODEC_JSON,)
    return None


def _serve_sharded(args, profile: str, progress) -> int:
    """``repro serve --shards N``: one fleet daemon per process.

    The parent warms the artifact cache once (default model plus any
    ``--models`` specs when ``--preload`` is set) so the N shard
    processes all load from disk instead of racing N training
    campaigns, then hands off to :class:`repro.api.ShardManager` and
    blocks until Ctrl-C.
    """
    import functools
    import threading

    from repro.api.fleet.pool import ModelKey
    from repro.api.shard import ShardManager

    specs = tuple(s.strip() for s in (args.models or "").split(",")
                  if s.strip())
    if not args.model:
        _load_or_train(args, profile, progress)  # warm the cache once
    if args.preload:
        for spec in specs:
            key = ModelKey.parse(spec, default_tag=profile)
            config = ReproConfig(profile=key.dataset_tag,
                                 model=key.family,
                                 feature_set=key.feature_set)
            _, hit = load_or_train(config, progress=progress)
            print(f"{'cached' if hit else 'trained'} shard model "
                  f"{key.spec}", file=sys.stderr)
    budget = (int(args.memory_budget_mb * 1024 * 1024)
              if args.memory_budget_mb else None)
    factory = functools.partial(
        fleet_factory,
        model_path=args.model,
        profile=profile,
        family=getattr(args, "family", "tree"),
        feature_set=getattr(args, "features", "static-all"),
        models=specs,
        preload=args.preload,
        max_batch=args.max_batch,
        max_delay_us=args.max_delay_us,
        memory_budget_bytes=budget,
        max_models=args.max_models,
        backend=getattr(args, "backend", BACKEND_COMPILED),
    )
    tcp = parse_tcp_endpoint(args.tcp) if args.tcp else None
    manager = ShardManager(factory, shards=args.shards,
                           socket_path=args.socket, tcp=tcp,
                           workers=args.workers,
                           codecs=_serve_codecs(args))
    manager.start()
    endpoint = ":".join(str(p) for p in manager.address[1:])
    print(f"sharded scoring daemon: {args.shards} shard(s) listening "
          f"on {manager.address[0]} {endpoint} "
          f"(pids {', '.join(str(p) for p in manager.pids)}); "
          f"Ctrl-C stops cleanly", file=sys.stderr)
    supervisor = None
    if getattr(args, "supervise", False):
        from repro.api.supervisor import ShardSupervisor

        def on_event(event: dict) -> None:
            detail = " ".join(f"{k}={v}" for k, v in event.items()
                              if k != "event")
            print(f"supervisor: {event['event']} {detail}",
                  file=sys.stderr)

        supervisor = ShardSupervisor(manager, on_event=on_event).start()
        print("shard supervisor running: crashed shards respawn, "
              "drained shards hand traffic to their siblings "
              "('repro fleet drain/restart')", file=sys.stderr)
    try:
        threading.Event().wait()  # until Ctrl-C
    except KeyboardInterrupt:
        pass
    finally:
        if supervisor is not None:
            supervisor.stop()
        manager.stop()
        print(f"stopped {args.shards} shard(s) cleanly", file=sys.stderr)
    return 0


def _fleet_endpoint(args) -> dict:
    """The AdminClient endpoint behind ``repro fleet`` options."""
    if args.socket:
        path = args.socket
        if getattr(args, "shard", None) is not None:
            from repro.api.shard import shard_socket_path

            path = shard_socket_path(path, args.shard)
        return {"socket_path": path}
    return {"tcp": parse_tcp_endpoint(args.tcp)}


def _fleet_rolling_restart(base: str, timeout: float) -> int:
    """``repro fleet restart``: drain shards one at a time, letting the
    serve process's supervisor respawn each before the next goes.

    Works entirely over the wire: the drain verb retires the shard and
    a ``--supervise``'d deployment respawns it (new pid, bumped
    registry epoch); this loop just sequences the drains and waits for
    each replacement to answer its health probe, so the fleet never
    drops below N-1 serving shards.
    """
    import time

    from repro.api.admin import AdminClient
    from repro.api.shard import read_registry
    from repro.errors import ScoringError

    rows = read_registry(base)
    if rows is None:
        print("fleet restart needs a unix-socket shard registry "
              "endpoint (serve --socket --shards N --supervise)",
              file=sys.stderr)
        return 2
    for row in sorted(rows, key=lambda r: r.get("index") or 0):
        index, old_pid = row.get("index"), row.get("pid")
        try:
            with AdminClient(socket_path=row["path"],
                             timeout=timeout) as admin:
                admin.drain()
        except ScoringError as exc:
            print(f"shard {index}: drain failed ({exc}); assuming it "
                  f"is already down", file=sys.stderr)
        deadline = time.monotonic() + max(timeout, 60.0)
        replacement = None
        while time.monotonic() < deadline:
            fresh = read_registry(base) or []
            match = next((r for r in fresh if r.get("index") == index),
                         None)
            if match is not None and match.get("pid") != old_pid:
                try:
                    with AdminClient(socket_path=match["path"],
                                     timeout=timeout) as admin:
                        if admin.health().serving:
                            replacement = match
                            break
                except ScoringError:
                    pass  # still coming up
            time.sleep(0.2)
        if replacement is None:
            print(f"shard {index} was not respawned in time; is the "
                  f"daemon running with --supervise?", file=sys.stderr)
            return 1
        print(f"shard {index}: pid {old_pid} -> {replacement['pid']}")
    print("rolling restart complete")
    return 0


def _fleet_command(args) -> int:
    """The ``repro fleet`` operator verbs over the typed admin API."""
    import json as _json

    from repro.api.admin import AdminClient
    from repro.api.admin import collect_metrics as collect_fleet_metrics
    from repro.api.admin import collect_stats as collect_fleet_stats
    from repro.obs import render_prometheus

    if (args.socket is None) == (args.tcp is None):
        print("fleet: configure exactly one endpoint (--socket PATH "
              "or --tcp HOST:PORT)", file=sys.stderr)
        return 2
    if args.verb == "restart":
        if not args.socket:
            print("fleet restart needs --socket (a shard registry)",
                  file=sys.stderr)
            return 2
        return _fleet_rolling_restart(args.socket, args.timeout)
    if (args.verb == "stats" and args.socket
            and getattr(args, "shard", None) is None):
        # fleet-wide aggregation across every registered shard
        stats = collect_fleet_stats(args.socket, timeout=args.timeout)
        print(_json.dumps(stats.as_dict(), indent=2))
        return 0
    if (args.verb == "metrics" and args.socket
            and getattr(args, "shard", None) is None):
        # bucket-wise merge across every registered shard: adding
        # histogram counts keeps fleet percentiles exact
        merged = collect_fleet_metrics(args.socket, timeout=args.timeout)
        if args.prom:
            sys.stdout.write(render_prometheus(list(merged.series)))
        else:
            print(_json.dumps(merged.as_dict(), indent=2))
        return 0
    with AdminClient(timeout=args.timeout, **_fleet_endpoint(args)) as admin:
        if args.verb == "stats":
            print(_json.dumps(admin.stats(), indent=2))
        elif args.verb == "metrics":
            payload = admin.metrics()
            if args.prom:
                sys.stdout.write(
                    render_prometheus(payload.get("series") or []))
            else:
                print(_json.dumps(payload, indent=2))
        elif args.verb == "health":
            health = admin.health()
            where = "" if health.index is None else f" shard {health.index}"
            print(f"{health.status}{where} (pid {health.pid})")
            return 0 if health.serving else 1
        elif args.verb == "models":
            listing = admin.list_models()
            for info in listing.models:
                marks = "".join((" [pinned]" if info.pinned else "",
                                 " [default]" if info.default else ""))
                print(f"{info.model:42s} {info.size_bytes:>10d} B  "
                      f"hits {info.hits:>6d}  loads {info.loads:>3d}"
                      f"{marks}")
            print(f"{len(listing)} resident model(s)")
        elif args.verb == "load":
            print(f"loaded {admin.load_model(args.spec)}")
        elif args.verb == "evict":
            evicted = admin.evict_model(args.spec)
            print("evicted" if evicted else "not resident")
        elif args.verb == "promote":
            print(f"promoted {admin.promote(args.spec)} to default")
        elif args.verb == "drain":
            started = admin.drain()
            print("drain started" if started else "already draining")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Source Code Classification for "
                    "Energy Efficiency in Parallel Ultra Low-Power "
                    "Microcontrollers' (DATE 2021)")
    parser.add_argument(
        "--version", action="version",
        version=f"repro {__version__} (code version {CODE_VERSION})")
    parser.add_argument("--profile", default=None,
                        help="dataset profile: paper, quick or unit "
                             "(default: $REPRO_PROFILE or 'paper')")
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for the labelling "
                             "campaign; 0 means one per CPU "
                             "(default: $REPRO_JOBS or 1)")
    sub = parser.add_subparsers(dest="command", required=True)

    n_kernels = len(all_kernel_specs())
    sub.add_parser("list-kernels",
                   help=f"list the {n_kernels} dataset kernels")
    sub.add_parser("energy-model", help="print the Table-I energy model")
    for name, text in (("build-dataset", "run the labelling campaign"),
                       ("dataset-stats", "class balance (paper §IV.B)"),
                       ("table4", "most relevant features (Table IV)"),
                       ("headline", "headline accuracy numbers")):
        _add_dataset_opts(sub.add_parser(name, help=text))

    fig = sub.add_parser("figure2", help="accuracy vs tolerance curves")
    fig.add_argument("--panel", choices=("left", "right"), default="left")
    _add_dataset_opts(fig)

    simp = sub.add_parser("simulate",
                          help="sweep team sizes for one kernel")
    _add_kernel_args(simp)

    mca = sub.add_parser("mca", help="LLVM-MCA-style report for a kernel")
    _add_kernel_args(mca)

    train = sub.add_parser(
        "train", help="train a classifier and save a model artifact")
    train.add_argument("--features", default="static-all",
                       help="feature set: "
                            + ", ".join(available_feature_sets()))
    train.add_argument("--model", default="tree",
                       help="model family: "
                            + ", ".join(available_model_families()))
    train.add_argument("--seed", type=int, default=0,
                       help="training seed (default 0)")
    train.add_argument("--output", "-o", default="model.json",
                       help="artifact path (default model.json)")
    train.add_argument("--force", action="store_true",
                       help="retrain even when the artifact cache holds "
                            "an up-to-date model for this configuration")
    _add_dataset_opts(train)

    pred = sub.add_parser(
        "predict", help="predict the minimum-energy team size for a "
                        "kernel")
    _add_kernel_args(pred)
    pred.add_argument("--model", default=None,
                      help="model artifact from 'repro train' (the "
                           "artifact cache supplies a warm default "
                           "when omitted)")
    _add_variant_opts(pred)
    _add_dataset_opts(pred)

    srv = sub.add_parser(
        "serve", help="JSON-lines scoring service (stdin/stdout, or a "
                      "persistent socket daemon with --socket/--tcp)")
    srv.add_argument("--model", default=None,
                     help="model artifact from 'repro train' (the "
                          "artifact cache supplies a default when "
                          "omitted)")
    transport = srv.add_mutually_exclusive_group()
    transport.add_argument("--socket", default=None, metavar="PATH",
                           help="serve as a daemon on a Unix domain "
                                "socket at PATH")
    transport.add_argument("--tcp", default=None, metavar="HOST:PORT",
                           help="serve as a daemon on a TCP endpoint "
                                "(port 0 binds an ephemeral port)")
    srv.add_argument("--workers", type=int, default=DEFAULT_WORKERS,
                     help=f"daemon worker threads / concurrent "
                          f"connections (default {DEFAULT_WORKERS})")
    _add_variant_opts(srv)
    srv.add_argument("--models", default=None, metavar="SPEC[,SPEC...]",
                     help="extra model keys to serve, as "
                          "family:feature_set[:dataset_tag] specs; "
                          "warm pre-loaded from the artifact cache at "
                          "startup")
    srv.add_argument("--preload", action="store_true",
                     help="train-and-cache any --models key whose "
                          "artifact is missing instead of refusing to "
                          "start (also lets cold lazy loads train)")
    srv.add_argument("--max-batch", type=int, default=DEFAULT_MAX_BATCH,
                     help=f"micro-batching: most single-row requests "
                          f"coalesced into one predict_batch call "
                          f"(default {DEFAULT_MAX_BATCH}; 0 disables "
                          f"batching; daemon mode only)")
    srv.add_argument("--max-delay-us", type=int,
                     default=DEFAULT_MAX_DELAY_US,
                     help=f"longest wait for followers after a batch "
                          f"opens in the threaded MicroBatcher, which "
                          f"serves cold-model rows; the daemon's "
                          f"event loop coalesces resident-model rows "
                          f"adaptively without a timed wait (default "
                          f"{DEFAULT_MAX_DELAY_US})")
    srv.add_argument("--memory-budget-mb", type=float, default=None,
                     help="evict least-recently-used unpinned models "
                          "once the resident set exceeds this many MiB "
                          "(default: unbounded)")
    srv.add_argument("--max-models", type=int, default=None,
                     help="evict least-recently-used unpinned models "
                          "beyond this count (default: unbounded)")
    srv.add_argument("--shards", type=int, default=1, metavar="N",
                     help="serve N daemon processes behind the one "
                          "endpoint (SO_REUSEPORT on --tcp, a shard "
                          "registry on --socket; default 1, daemon "
                          "mode only)")
    srv.add_argument("--supervise", action="store_true",
                     help="run a shard supervisor next to the shards: "
                          "health-check them, respawn crashed ones "
                          "(refreshing the registry) and honour "
                          "graceful drains, enabling 'repro fleet "
                          "drain/restart' (daemon mode)")
    srv.add_argument("--codec", choices=("auto", "json"), default="auto",
                     help="wire codecs offered to hello negotiation: "
                          "auto offers the binary codecs (v2 stream "
                          "frames and v1) with JSON fallback, json "
                          "pins JSON-lines only (daemon mode; "
                          "stdin/stdout is always JSON-lines)")
    _add_dataset_opts(srv)

    flt = sub.add_parser(
        "fleet", help="operate a running scoring deployment over the "
                      "typed admin API (stats, metrics, health, "
                      "models, load, evict, promote, drain, restart)")
    fleet_sub = flt.add_subparsers(dest="verb", required=True)

    def _add_fleet_endpoint(p, shardable: bool = True) -> None:
        p.add_argument("--socket", default=None, metavar="PATH",
                       help="unix endpoint of the deployment (a shard "
                            "registry or a plain daemon socket)")
        p.add_argument("--tcp", default=None, metavar="HOST:PORT",
                       help="TCP endpoint of the deployment")
        if shardable:
            p.add_argument("--shard", type=int, default=None, metavar="N",
                           help="address shard N of a unix-socket "
                                "deployment directly (<socket>.N)")
        p.add_argument("--timeout", type=float, default=10.0,
                       help="per-request timeout in seconds "
                            "(default 10)")

    _add_fleet_endpoint(fleet_sub.add_parser(
        "stats", help="stats tree (fleet-wide aggregate on a shard "
                      "registry; --shard for one shard)"))
    mtr = fleet_sub.add_parser(
        "metrics", help="telemetry snapshot (bucket-wise merged "
                        "across a shard registry; --shard for one "
                        "shard)")
    mtr.add_argument("--prom", action="store_true",
                     help="render Prometheus text exposition instead "
                          "of JSON")
    _add_fleet_endpoint(mtr)
    _add_fleet_endpoint(fleet_sub.add_parser(
        "health", help="liveness/drain probe (exit 0 serving, "
                       "1 draining)"))
    _add_fleet_endpoint(fleet_sub.add_parser(
        "models", help="resident models of the serving fleet"))
    for verb, text in (
        ("load", "warm-load a model key into the fleet pool"),
        ("evict", "drop a resident model key"),
        ("promote", "make an already-resident key the serving default "
                    "(hot swap endgame)"),
    ):
        vp = fleet_sub.add_parser(verb, help=text)
        vp.add_argument("spec", metavar="SPEC",
                        help="model key: family:feature_set[:dataset_tag]")
        _add_fleet_endpoint(vp)
    _add_fleet_endpoint(fleet_sub.add_parser(
        "drain", help="gracefully retire one server: finish in-flight "
                      "work, refuse new requests, exit"))
    _add_fleet_endpoint(fleet_sub.add_parser(
        "restart", help="rolling restart of a --supervise'd sharded "
                        "deployment (drain one shard at a time, wait "
                        "for its respawn)"), shardable=False)

    lnt = sub.add_parser(
        "lint", help="protocol- and concurrency-aware static analysis "
                     "of the repro sources (rules RPL001-RPL005; also "
                     "'python -m repro.analysis')")
    lnt.add_argument("paths", nargs="*",
                     help="files or directories to analyze (default: "
                          "the installed repro package source)")
    lnt.add_argument("--select", default=None, metavar="RULE[,RULE...]",
                     help="run only these rule codes")
    lnt.add_argument("--disable", default=None, metavar="RULE[,RULE...]",
                     help="skip these rule codes")
    lnt.add_argument("--format", choices=("text", "json"), default="text",
                     help="report format (default text)")
    lnt.add_argument("--show-waived", action="store_true",
                     help="include waived findings in text output")
    lnt.add_argument("--list-rules", action="store_true",
                     help="print the rule catalog and exit")

    args = parser.parse_args(argv)
    profile = args.profile or active_profile()

    if args.command == "list-kernels":
        for spec in all_kernel_specs():
            dtypes = "/".join(d.value for d in spec.dtypes)
            print(f"{spec.suite:10s} {spec.name:22s} [{dtypes}]")
        return 0

    if args.command == "energy-model":
        print(format_model_table(EnergyModel.paper_table1()))
        return 0

    if args.command == "fleet":
        return _fleet_command(args)

    if args.command == "lint":
        from repro.analysis import main as lint_main

        lint_argv = list(args.paths)
        if args.select:
            lint_argv += ["--select", args.select]
        if args.disable:
            lint_argv += ["--disable", args.disable]
        if args.format != "text":
            lint_argv += ["--format", args.format]
        if args.show_waived:
            lint_argv.append("--show-waived")
        if args.list_rules:
            lint_argv.append("--list-rules")
        return lint_main(lint_argv)

    if args.command == "simulate":
        kernel = _build_kernel(args)
        results = sweep_cores(kernel)
        for res in results:
            marker = " <- minimum" if (res.team_size ==
                                       minimum_energy_label(results)) else ""
            print(f"cores={res.team_size}  cycles={res.cycles:>10d}  "
                  f"energy={res.total_energy_fj / 1e6:>12.3f} nJ{marker}")
        print()
        best = min(results, key=lambda r: r.total_energy_fj)
        print(format_breakdown(best.energy,
                               f"({kernel.name}, {best.team_size} cores)"))
        return 0

    if args.command == "mca":
        print(mca_report(_build_kernel(args)))
        return 0

    def progress(msg: str) -> None:
        print(msg, file=sys.stderr)

    if args.command == "train":
        config = ReproConfig(profile=profile, jobs=args.jobs,
                             feature_set=args.features, model=args.model,
                             seed=args.seed)
        clf, cache_hit = load_or_train(config, force=args.force,
                                       progress=progress)
        clf.save(args.output)
        info = clf.info()
        verb = "reused cached artifact:" if cache_hit else "trained"
        print(f"{verb} {info['model_family']!r} on "
              f"{info['n_training_samples']} samples "
              f"(profile {profile!r}, feature set "
              f"{info['feature_set']!r}, {info['n_features']} features)")
        print(f"model artifact written to {args.output} "
              f"(code version {info['code_version']})")
        return 0

    if args.command == "predict":
        clf = _load_or_train(args, profile, progress)
        kernel = _build_kernel(args)
        prediction = clf.predict(kernel)
        print(f"{kernel.name} ({args.dtype}, {args.size} B): "
              f"predicted minimum-energy team size = {prediction}")
        return 0

    if args.command == "serve":
        daemon_mode = bool(args.socket or args.tcp)
        if args.shards < 1:
            parser.error(f"--shards must be >= 1, got {args.shards}")
        if args.shards > 1 and not daemon_mode:
            parser.error("--shards requires a daemon endpoint "
                         "(--socket PATH or --tcp HOST:PORT)")
        if args.supervise and not daemon_mode:
            parser.error("--supervise requires a daemon endpoint "
                         "(--socket PATH or --tcp HOST:PORT)")
        if args.shards > 1 or args.supervise:
            # supervision always runs through the shard manager — a
            # supervised single daemon is a one-shard fleet
            return _serve_sharded(args, profile, progress)
        clf = _load_or_train(args, profile, progress)
        budget = (int(args.memory_budget_mb * 1024 * 1024)
                  if args.memory_budget_mb else None)
        # the single-process fleet assembles through the same factory
        # the shard processes run, so the two paths cannot drift
        fleet = fleet_factory(
            profile=profile,
            models=tuple(s for s in (args.models or "").split(",")
                         if s.strip()),
            preload=args.preload,
            max_batch=args.max_batch if daemon_mode else 0,
            max_delay_us=args.max_delay_us,
            memory_budget_bytes=budget,
            max_models=args.max_models,
            default=clf,
            on_preload=lambda key: print(f"pre-loaded model {key.spec}",
                                         file=sys.stderr),
            backend=getattr(args, "backend", BACKEND_COMPILED),
        )
        if daemon_mode:
            tcp = parse_tcp_endpoint(args.tcp) if args.tcp else None
            daemon = ScoringDaemon(fleet=fleet, socket_path=args.socket,
                                   tcp=tcp, workers=args.workers,
                                   codecs=_serve_codecs(args))
            daemon.start()
            endpoint = ":".join(str(p) for p in daemon.address[1:])
            batching = (f"adaptive micro-batching <= {args.max_batch} "
                        f"rows" if fleet.batcher
                        else "micro-batching off")
            print(f"scoring daemon listening on {daemon.address[0]} "
                  f"{endpoint} ({args.workers} workers, "
                  f"{len(fleet.pool)} resident model(s), {batching}); "
                  f"Ctrl-C stops cleanly", file=sys.stderr)
            try:
                daemon.serve_forever()
            finally:
                daemon.stop()
                fleet.close()
                stats = daemon.stats()
                print(f"served {stats['requests_served']} request(s) "
                      f"over {stats['connections_served']} "
                      f"connection(s)", file=sys.stderr)
            return 0
        try:
            handled = serve(fleet)
        finally:
            fleet.close()
        print(f"served {handled} request(s)", file=sys.stderr)
        return 0

    # dataset-backed experiment commands
    dataset = build_dataset(profile, progress=progress, jobs=args.jobs)
    if args.command == "build-dataset":
        print(f"built {len(dataset)} samples (profile {profile!r})")
        print(run_dataset_stats(dataset).render())
    elif args.command == "dataset-stats":
        print(run_dataset_stats(dataset).render())
    elif args.command == "figure2":
        print(run_figure2(dataset, args.panel).render())
    elif args.command == "table4":
        print(run_table4(dataset).render())
    elif args.command == "headline":
        print(run_headline(dataset).render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
